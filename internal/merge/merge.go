// Package merge implements Sloth's batch query-merge optimizer: a rewrite
// pass that runs between the query store's flush and the batch driver's
// dispatch. The query store already collapses *identical* statements; this
// subsystem goes further and coalesces statements that are identical except
// for one varying part, organized as a registry of three families:
//
//   - equality (FamilyEquality): the classic ORM 1+N shape — `SELECT ...
//     WHERE owner_id = ?` issued once per rendered row — becomes a single
//     `WHERE col IN (...)` statement;
//   - aggregate (FamilyAggregate): the per-row scalar-aggregate fan-out —
//     `SELECT COUNT(*) FROM t WHERE fk = ?` once per listed row — becomes
//     one `SELECT fk, COUNT(*) FROM t WHERE fk IN (...) GROUP BY fk`, and
//     demux synthesizes each original's one-row result (including the
//     zero-count row for keys that matched nothing);
//   - range (FamilyRange): statements identical except for one value
//     window (`col BETWEEN ? AND ?` / `col >= ? AND col < ?`) become a
//     single OR-of-windows statement — one table scan instead of N — with
//     range-membership demux.
//
// After execution the merged result set is demultiplexed back into one
// ResultSet per original statement, so callers and cached query ids observe
// exactly the results the unmerged batch would have produced.
//
// The paper (conf_sigmod_CheungMS14, Sec. 6.7) identifies the accumulated
// batch as an optimization surface; merging makes batches *smaller* (fewer,
// wider statements) rather than just fewer. Every per-statement cost —
// server dispatch, parse, per-query execution overhead, result-set framing
// — is paid once per group instead of once per statement, and the aggregate
// and range families also cut row work (one GROUP BY probe / one scan
// instead of N).
//
// Safety rules (checked per statement, conservatively):
//
//   - reads only; writes and transaction control pass through untouched and
//     act as barriers that close all open groups, so no read is ever moved
//     across a write;
//   - single-table SELECTs without DISTINCT, JOIN, GROUP BY, HAVING,
//     LIMIT, or OFFSET; the equality and range families additionally
//     reject computed projections, while the aggregate family requires
//     every output column to be a plain aggregate call;
//   - the varying part must resolve to literal or parameter values; the
//     remaining conjuncts, the projection, and the ORDER BY must be
//     identical across a group (compared with argument values resolved);
//   - the match column must be recoverable from the merged result rows
//     (projected for equality/range, added as the GROUP BY key for
//     aggregates), because demultiplexing keys on its value;
//   - merged IN lists and OR-of-window lists are capped at
//     Config.MaxInWidth members; wider groups split into chunks.
package merge

import (
	"fmt"
	"sync"

	"repro/internal/driver"
	"repro/internal/sqldb"
	"repro/internal/sqldb/sqlparse"
)

// DefaultMaxInWidth bounds the IN list (or window list) of one merged
// statement, mirroring the way production drivers cap host-variable counts
// per statement.
const DefaultMaxInWidth = 64

// Config controls the optimizer. The zero value disables merging, so a
// zero-config query store behaves exactly as before this subsystem existed.
type Config struct {
	// Enabled turns the rewrite on.
	Enabled bool
	// MaxInWidth caps values per merged IN list; <= 0 means
	// DefaultMaxInWidth.
	MaxInWidth int
	// DisableAggregates switches off the aggregate family (on by default
	// whenever Enabled is set) — an ablation knob isolating the equality
	// baseline.
	DisableAggregates bool
	// DisableRanges switches off the range family, likewise.
	DisableRanges bool
	// ShardOf, when set on a sharded deployment, maps a (table, column,
	// value) match conjunct to its owning storage shard (ok=false:
	// unroutable — not the partition column, or a NULL). Merge families
	// then split per shard BEFORE rewriting, so an emitted `IN (...)` list
	// never spans shards and every merged statement stays routable by the
	// driver's occupancy mask. Splitting changes statement widths, so with
	// merging enabled the virtual timeline is shard-count-DEPENDENT (page
	// HTML never changes — demux is transparent); the golden timeline
	// equality bar therefore applies to merge-off configurations, which is
	// what every default and throughput path runs.
	ShardOf func(table, col string, v sqldb.Value) (int, bool)
}

// width returns the effective IN-list cap.
func (c Config) width() int {
	if c.MaxInWidth <= 0 {
		return DefaultMaxInWidth
	}
	return c.MaxInWidth
}

// familyOn reports whether a family participates under this configuration.
func (c Config) familyOn(f FamilyID) bool {
	switch f {
	case FamilyAggregate:
		return !c.DisableAggregates
	case FamilyRange:
		return !c.DisableRanges
	default:
		return true
	}
}

// Stats counts optimizer activity across the batches of one Merger.
type Stats struct {
	Batches     int64 // batches rewritten
	Groups      int64 // merged statements emitted (group chunks)
	Merged      int64 // original statements absorbed into merged statements
	Saved       int64 // statements eliminated (Merged - Groups)
	Ineligible  int64 // read statements that failed a shape check
	RowsDemuxed int64 // rows routed back to original statements
	// SavedByFamily and GroupsByFamily break Saved and Groups down per
	// merge family (indexed by FamilyID).
	SavedByFamily  [NumFamilies]int64
	GroupsByFamily [NumFamilies]int64
}

// Merger is the batch optimizer. Rewrites themselves serialize per
// dispatcher (one session thread or one worker goroutine at a time), but
// since the dispatch layer may run them on a worker goroutine while the
// session thread reads Stats, the counters are mutex-guarded.
type Merger struct {
	cfg Config

	mu    sync.Mutex
	stats Stats
}

// New creates a merger.
func New(cfg Config) *Merger { return &Merger{cfg: cfg} }

// Enabled reports whether the rewrite pass is active.
func (m *Merger) Enabled() bool { return m.cfg.Enabled }

// Stats snapshots the optimizer counters.
func (m *Merger) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters.
func (m *Merger) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// route records where one original statement's result comes from in the
// rewritten batch.
type route struct {
	stmtIdx int        // index into Plan.Stmts
	merged  bool       // true when the result must be demultiplexed
	cand    *candidate // this original's analysis (merged routes only)
}

// Plan is a rewritten batch plus the routing needed to reconstruct
// per-original results.
type Plan struct {
	// Stmts is the batch to hand to the driver, in an order consistent with
	// the original: each merged statement sits at its first member's
	// position, and no read crosses a write.
	Stmts  []driver.Stmt
	routes []route
	m      *Merger

	groupsBy [NumFamilies]int
	mergedBy [NumFamilies]int
}

// Saved reports how many statements the rewrite eliminated.
func (p *Plan) Saved() int { return len(p.routes) - len(p.Stmts) }

// Groups reports how many merged statements this plan emitted — the
// per-batch delta behind the Merger's cumulative Groups counter.
func (p *Plan) Groups() int {
	n := 0
	for _, g := range p.groupsBy {
		n += g
	}
	return n
}

// SavedByFamily breaks Saved down per merge family (indexed by FamilyID).
func (p *Plan) SavedByFamily() [NumFamilies]int {
	var out [NumFamilies]int
	for f := range out {
		out[f] = p.mergedBy[f] - p.groupsBy[f]
	}
	return out
}

// group accumulates the members of one fingerprint while the batch is
// scanned.
type group struct {
	members []int // original statement indexes, in order
	cands   []*candidate
}

// chunkInfo partitions one group into width-capped merged statements.
type chunkInfo struct {
	reps  [][]*candidate // per chunk, distinct-valued members in order
	byIdx map[int]int    // original statement index -> chunk ordinal
	stmt  []int          // per chunk, rewritten-batch index (-1 until emitted)
}

// Rewrite analyzes a pending batch and coalesces mergeable groups. The
// returned plan's Stmts execute in place of the originals; Demux then maps
// the results back. Rewrite never fails: statements it cannot improve (or
// cannot parse) pass through verbatim.
func (m *Merger) Rewrite(stmts []driver.Stmt) *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := &Plan{m: m, routes: make([]route, len(stmts))}
	m.stats.Batches++

	cands := make([]*candidate, len(stmts))
	groups := make(map[string]*group)
	order := []string{}
	barrier := 0
	for i, st := range stmts {
		if sqlparse.IsWriteSQL(st.SQL) {
			// Writes close all open groups: merging must not move a read
			// from one side of a write to the other.
			barrier++
			continue
		}
		c := m.analyze(st)
		if c == nil {
			m.stats.Ineligible++
			continue
		}
		// Shard prefix first: equality and aggregate candidates carry one
		// match value, so their owning shard is known before rewrite and
		// same-key candidates keep grouping together. Range windows span
		// keys and stay unsplit (they fan out at execution regardless).
		if m.cfg.ShardOf != nil && c.fam != FamilyRange {
			if sh, ok := m.cfg.ShardOf(c.sel.From.Name, c.matchRef.Name, c.matchVal); ok {
				c.fp = fmt.Sprintf("s%d\x1e%s", sh, c.fp)
			}
		}
		c.fp = fmt.Sprintf("%d\x1e%s", barrier, c.fp)
		cands[i] = c
		g, ok := groups[c.fp]
		if !ok {
			g = &group{}
			groups[c.fp] = g
			order = append(order, c.fp)
		}
		g.members = append(g.members, i)
		g.cands = append(g.cands, c)
	}

	// Partition each multi-member group into width-capped chunks of
	// distinct varying parts. Duplicate values/windows (possible with dedup
	// disabled) share the chunk that already carries them.
	chunks := make(map[string]*chunkInfo)
	width := m.cfg.width()
	for _, fp := range order {
		g := groups[fp]
		if len(g.members) < 2 {
			continue
		}
		ci := &chunkInfo{byIdx: make(map[int]int)}
		seen := make(map[string]int) // varying-part key -> chunk ordinal
		for k, idx := range g.members {
			key := g.cands[k].groupKey()
			if ord, dup := seen[key]; dup {
				ci.byIdx[idx] = ord
				continue
			}
			if len(ci.reps) == 0 || len(ci.reps[len(ci.reps)-1]) >= width {
				ci.reps = append(ci.reps, nil)
				ci.stmt = append(ci.stmt, -1)
			}
			ord := len(ci.reps) - 1
			ci.reps[ord] = append(ci.reps[ord], g.cands[k])
			seen[key] = ord
			ci.byIdx[idx] = ord
		}
		chunks[fp] = ci
	}

	// Emit pass: walk originals in order; each merged statement is emitted
	// at its chunk's first member, so relative order with pass-through
	// statements (and any write barrier) is preserved.
	for i, st := range stmts {
		c := cands[i]
		var ci *chunkInfo
		if c != nil {
			ci = chunks[c.fp]
		}
		if ci == nil {
			// Pass-through: write, ineligible, or singleton group.
			p.routes[i] = route{stmtIdx: len(p.Stmts)}
			p.Stmts = append(p.Stmts, st)
			continue
		}
		ord := ci.byIdx[i]
		if ci.stmt[ord] == -1 {
			sql, args, err := renderMergedFn(c, ci.reps[ord])
			if err != nil {
				// Defensive fallback — candidate shapes are all
				// renderer-supported, but never let a render bug change
				// results: execute this statement unmerged.
				p.routes[i] = route{stmtIdx: len(p.Stmts)}
				p.Stmts = append(p.Stmts, st)
				m.stats.Ineligible++
				continue
			}
			ci.stmt[ord] = len(p.Stmts)
			p.Stmts = append(p.Stmts, driver.Stmt{SQL: sql, Args: args})
			p.groupsBy[c.fam]++
			m.stats.Groups++
			m.stats.GroupsByFamily[c.fam]++
		}
		p.routes[i] = route{stmtIdx: ci.stmt[ord], merged: true, cand: c}
		p.mergedBy[c.fam]++
		m.stats.Merged++
	}
	m.stats.Saved += int64(p.Saved())
	for f, s := range p.SavedByFamily() {
		m.stats.SavedByFamily[f] += int64(s)
	}
	return p
}

// Demux routes the rewritten batch's results back to the original
// statements: pass-through statements forward their ResultSet unchanged,
// and each merged statement's rows are partitioned per family — by match
// value (equality), by GROUP BY key with zero-row synthesis (aggregate),
// or by window membership (range). Originals whose key matched no row
// receive exactly what their own execution would have returned: an empty
// ResultSet for equality/range, a one-row zero/NULL result for aggregates.
//
// The merged statement's scan work (ResultSet.RowsScanned) is pro-rated
// across its routes — earlier routes absorb the remainder — so per-original
// cost accounting stays comparable with unmerged execution.
func (p *Plan) Demux(results []*sqldb.ResultSet) ([]*sqldb.ResultSet, error) {
	if len(results) != len(p.Stmts) {
		return nil, fmt.Errorf("merge: demux: %d results for %d statements", len(results), len(p.Stmts))
	}
	// Pro-rating denominators: how many originals share each merged
	// statement, and how many of its shares have been handed out.
	shares := make(map[int]int)
	for _, r := range p.routes {
		if r.merged {
			shares[r.stmtIdx]++
		}
	}
	handed := make(map[int]int)

	out := make([]*sqldb.ResultSet, len(p.routes))
	var demuxedRows int64
	for i, r := range p.routes {
		rs := results[r.stmtIdx]
		if !r.merged {
			out[i] = rs
			continue
		}
		var sub *sqldb.ResultSet
		var err error
		switch r.cand.fam {
		case FamilyAggregate:
			sub = demuxAggregate(rs, r.cand)
		case FamilyRange:
			sub, err = demuxRange(rs, r.cand)
		default:
			sub, err = demuxEquality(rs, r.cand)
		}
		if err != nil {
			return nil, err
		}
		n, k := shares[r.stmtIdx], handed[r.stmtIdx]
		sub.RowsScanned = scanShare(rs.RowsScanned, n, k)
		handed[r.stmtIdx]++
		demuxedRows += int64(len(sub.Rows))
		out[i] = sub
	}
	if p.m != nil {
		p.m.mu.Lock()
		p.m.stats.RowsDemuxed += demuxedRows
		p.m.mu.Unlock()
	}
	return out, nil
}

// scanShare splits a merged statement's scan count across its n routes:
// share k (0-based) gets the floor, with the remainder absorbed one row at
// a time by the earliest routes, so the shares always sum to scanned.
func scanShare(scanned, n, k int) int {
	if n <= 0 {
		return scanned
	}
	share := scanned / n
	if k < scanned%n {
		share++
	}
	return share
}

// demuxEquality partitions merged rows by the match column's value.
func demuxEquality(rs *sqldb.ResultSet, c *candidate) (*sqldb.ResultSet, error) {
	ci, ok := rs.ColIndex(c.matchRef.Name)
	if !ok {
		return nil, fmt.Errorf("merge: demux: merged result lacks match column %q", c.matchRef.Name)
	}
	sub := &sqldb.ResultSet{Cols: rs.Cols}
	for _, row := range rs.Rows {
		if sqldb.Equal(sqldb.Normalize(row[ci]), c.matchVal) {
			sub.Rows = append(sub.Rows, row)
		}
	}
	return sub, nil
}

// demuxAggregate reconstructs the one-row scalar result of an original
// aggregate statement from the merged GROUP BY result. The merged
// projection is positional — key first, then the aggregates in the
// original select-list order — and the output carries the original
// statement's own labels. A key with no group row gets the empty-set
// aggregate values: zero for COUNT, NULL otherwise.
func demuxAggregate(rs *sqldb.ResultSet, c *candidate) *sqldb.ResultSet {
	sub := &sqldb.ResultSet{Cols: c.labels}
	for _, row := range rs.Rows {
		if !sqldb.Equal(sqldb.Normalize(row[0]), c.matchVal) {
			continue
		}
		vals := make([]sqldb.Value, len(c.aggs))
		copy(vals, row[1:1+len(c.aggs)])
		sub.Rows = append(sub.Rows, vals)
		return sub
	}
	vals := make([]sqldb.Value, len(c.aggs))
	for i, fc := range c.aggs {
		vals[i] = zeroValue(fc)
	}
	sub.Rows = append(sub.Rows, vals)
	return sub
}

// demuxRange partitions merged rows by membership in the original's value
// window.
func demuxRange(rs *sqldb.ResultSet, c *candidate) (*sqldb.ResultSet, error) {
	ci, ok := rs.ColIndex(c.matchRef.Name)
	if !ok {
		return nil, fmt.Errorf("merge: demux: merged result lacks range column %q", c.matchRef.Name)
	}
	sub := &sqldb.ResultSet{Cols: rs.Cols}
	for _, row := range rs.Rows {
		if c.win.contains(sqldb.Normalize(row[ci])) {
			sub.Rows = append(sub.Rows, row)
		}
	}
	return sub, nil
}
