// Package merge implements Sloth's batch query-merge optimizer: a rewrite
// pass that runs between the query store's flush and the batch driver's
// dispatch. The query store already collapses *identical* statements; this
// subsystem goes further and coalesces statements that are identical except
// for one equality literal — the classic ORM 1+N shape (`SELECT ... WHERE
// owner_id = ?` issued once per rendered row) — into a single `WHERE col IN
// (...)` statement. After execution the merged result set is demultiplexed
// back into one ResultSet per original statement, keyed by the match
// column, so callers and cached query ids observe exactly the results the
// unmerged batch would have produced.
//
// The paper (conf_sigmod_CheungMS14, Sec. 6.7) identifies the accumulated
// batch as an optimization surface; merging is the first optimization here
// that makes batches *smaller* (fewer, wider statements) rather than just
// fewer. Every per-statement cost — server dispatch, parse, per-query
// execution overhead, result-set framing — is paid once per group instead
// of once per statement.
//
// Safety rules (checked per statement, conservatively):
//
//   - reads only; writes and transaction control pass through untouched and
//     act as barriers that close all open groups, so no read is ever moved
//     across a write;
//   - single-table SELECTs without DISTINCT, JOIN, GROUP BY, HAVING,
//     aggregates, LIMIT, or OFFSET;
//   - the WHERE clause must contain a top-level `col = <literal|param>`
//     conjunct; the remaining conjuncts, the projection, and the ORDER BY
//     must be identical across the group (compared with argument values
//     resolved);
//   - the match column must appear in the output (star projections
//     qualify), because demultiplexing keys on its value;
//   - merged IN lists are capped at Config.MaxInWidth values; wider groups
//     split into chunks.
package merge

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/driver"
	"repro/internal/sqldb"
	"repro/internal/sqldb/sqlparse"
)

// DefaultMaxInWidth bounds the IN list of one merged statement, mirroring
// the way production drivers cap host-variable counts per statement.
const DefaultMaxInWidth = 64

// Config controls the optimizer. The zero value disables merging, so a
// zero-config query store behaves exactly as before this subsystem existed.
type Config struct {
	// Enabled turns the rewrite on.
	Enabled bool
	// MaxInWidth caps values per merged IN list; <= 0 means
	// DefaultMaxInWidth.
	MaxInWidth int
}

// width returns the effective IN-list cap.
func (c Config) width() int {
	if c.MaxInWidth <= 0 {
		return DefaultMaxInWidth
	}
	return c.MaxInWidth
}

// Stats counts optimizer activity across the batches of one Merger.
type Stats struct {
	Batches     int64 // batches rewritten
	Groups      int64 // merged statements emitted (group chunks)
	Merged      int64 // original statements absorbed into merged statements
	Saved       int64 // statements eliminated (Merged - Groups)
	Ineligible  int64 // read statements that failed a shape check
	RowsDemuxed int64 // rows routed back to original statements
}

// Merger is the batch optimizer. Rewrites themselves serialize per
// dispatcher (one session thread or one worker goroutine at a time), but
// since the dispatch layer may run them on a worker goroutine while the
// session thread reads Stats, the counters are mutex-guarded.
type Merger struct {
	cfg Config

	mu    sync.Mutex
	stats Stats
}

// New creates a merger.
func New(cfg Config) *Merger { return &Merger{cfg: cfg} }

// Enabled reports whether the rewrite pass is active.
func (m *Merger) Enabled() bool { return m.cfg.Enabled }

// Stats snapshots the optimizer counters.
func (m *Merger) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters.
func (m *Merger) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// candidate is one statement eligible for merging.
type candidate struct {
	sel      *sqlparse.SelectStmt
	args     []sqldb.Value
	matchRef *sqlparse.ColRef // column of the `col = value` conjunct
	matchVal sqldb.Value      // normalized match value
	others   []sqlparse.Expr  // remaining WHERE conjuncts
	fp       string
}

// splitConjuncts flattens a WHERE tree over top-level ANDs.
func splitConjuncts(e sqlparse.Expr, out []sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.Binary); ok && b.Op == sqlparse.OpAnd {
		out = splitConjuncts(b.L, out)
		return splitConjuncts(b.R, out)
	}
	return append(out, e)
}

// constOf resolves a Literal or Param to its value. Anything else — column
// references, computed expressions — disqualifies the conjunct.
func constOf(e sqlparse.Expr, args []sqldb.Value) (sqldb.Value, bool) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return sqldb.Normalize(x.Value), true
	case *sqlparse.Param:
		if x.Index < 0 || x.Index >= len(args) {
			return nil, false
		}
		return sqldb.Normalize(args[x.Index]), true
	default:
		return nil, false
	}
}

// scalarKey gives a map key for a match value; only these scalar types are
// mergeable (NULL never equals anything, so it is excluded).
func scalarKey(v sqldb.Value) (string, bool) {
	switch x := v.(type) {
	case int64:
		return "i" + fmt.Sprint(x), true
	case string:
		return "s" + x, true
	case float64:
		return "f" + fmt.Sprint(x), true
	case bool:
		return "b" + fmt.Sprint(x), true
	default:
		return "", false
	}
}

// analyze classifies one statement, returning a candidate when it is
// mergeable and nil otherwise.
func analyze(st driver.Stmt) *candidate {
	parsed, err := sqlparse.Parse(st.SQL)
	if err != nil {
		return nil
	}
	sel, ok := parsed.(*sqlparse.SelectStmt)
	if !ok {
		return nil
	}
	if sel.Distinct || len(sel.Joins) > 0 || len(sel.GroupBy) > 0 ||
		sel.Having != nil || sel.Limit >= 0 || sel.Offset > 0 || sel.Where == nil {
		return nil
	}
	// Projection: stars and bare column references only; anything computed
	// (aggregates especially) changes meaning when rows from other keys
	// join the set.
	hasStar := false
	for _, se := range sel.Cols {
		if se.Star {
			if se.StarTable != "" && !strings.EqualFold(se.StarTable, sel.From.Binding()) {
				return nil
			}
			hasStar = true
			continue
		}
		if _, ok := se.Expr.(*sqlparse.ColRef); !ok {
			return nil
		}
	}

	conjuncts := splitConjuncts(sel.Where, nil)
	c := &candidate{sel: sel, args: st.Args}
	for _, conj := range conjuncts {
		if c.matchRef == nil {
			if ref, val, ok := eqConst(conj, st.Args, sel.From.Binding()); ok {
				c.matchRef, c.matchVal = ref, val
				continue
			}
		}
		c.others = append(c.others, conj)
	}
	if c.matchRef == nil {
		return nil
	}
	if _, ok := scalarKey(c.matchVal); !ok {
		return nil
	}
	// Demux keys on the match column's value in the result rows, so the
	// projection must carry it.
	if !hasStar && !projectionHas(sel.Cols, c.matchRef.Name) {
		return nil
	}
	fp, err := fingerprint(c)
	if err != nil {
		return nil
	}
	c.fp = fp
	return c
}

// eqConst matches a `col = const` (or mirrored) conjunct whose column
// belongs to the FROM table.
func eqConst(e sqlparse.Expr, args []sqldb.Value, binding string) (*sqlparse.ColRef, sqldb.Value, bool) {
	b, ok := e.(*sqlparse.Binary)
	if !ok || b.Op != sqlparse.OpEq {
		return nil, nil, false
	}
	try := func(colSide, valSide sqlparse.Expr) (*sqlparse.ColRef, sqldb.Value, bool) {
		ref, ok := colSide.(*sqlparse.ColRef)
		if !ok {
			return nil, nil, false
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, binding) {
			return nil, nil, false
		}
		v, ok := constOf(valSide, args)
		if !ok || v == nil {
			return nil, nil, false
		}
		return ref, v, true
	}
	if ref, v, ok := try(b.L, b.R); ok {
		return ref, v, true
	}
	return try(b.R, b.L)
}

// projectionHas reports whether an explicit select list outputs the match
// column itself under the label demux will look up. An alias that merely
// *spells* the match column's name over some other column is rejected
// outright: demux resolves the label positionally, so a shadowing alias
// would partition rows by the wrong column's values.
func projectionHas(cols []sqlparse.SelectExpr, name string) bool {
	found := false
	for _, se := range cols {
		if se.Star {
			continue
		}
		ref := se.Expr.(*sqlparse.ColRef) // analyze already checked the type
		if se.Alias != "" {
			if strings.EqualFold(se.Alias, name) {
				return false
			}
			continue
		}
		if strings.EqualFold(ref.Name, name) {
			found = true
		}
	}
	return found
}

// route records where one original statement's result comes from in the
// rewritten batch.
type route struct {
	stmtIdx int         // index into Plan.Stmts
	merged  bool        // true when the result must be demultiplexed
	key     sqldb.Value // match value (merged routes only)
	col     string      // match column label (merged routes only)
}

// Plan is a rewritten batch plus the routing needed to reconstruct
// per-original results.
type Plan struct {
	// Stmts is the batch to hand to the driver, in an order consistent with
	// the original: each merged statement sits at its first member's
	// position, and no read crosses a write.
	Stmts  []driver.Stmt
	routes []route
	m      *Merger
}

// Saved reports how many statements the rewrite eliminated.
func (p *Plan) Saved() int { return len(p.routes) - len(p.Stmts) }

// Groups reports how many merged IN-list statements this plan emitted —
// the per-batch delta behind the Merger's cumulative Groups counter.
func (p *Plan) Groups() int {
	seen := make(map[int]struct{})
	for _, r := range p.routes {
		if r.merged {
			seen[r.stmtIdx] = struct{}{}
		}
	}
	return len(seen)
}

// group accumulates the members of one fingerprint while the batch is
// scanned.
type group struct {
	members []int // original statement indexes, in order
	cands   []*candidate
}

// Rewrite analyzes a pending batch and coalesces mergeable groups. The
// returned plan's Stmts execute in place of the originals; Demux then maps
// the results back. Rewrite never fails: statements it cannot improve (or
// cannot parse) pass through verbatim.
func (m *Merger) Rewrite(stmts []driver.Stmt) *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := &Plan{m: m, routes: make([]route, len(stmts))}
	m.stats.Batches++

	cands := make([]*candidate, len(stmts))
	groups := make(map[string]*group)
	order := []string{}
	barrier := 0
	for i, st := range stmts {
		if sqlparse.IsWriteSQL(st.SQL) {
			// Writes close all open groups: merging must not move a read
			// from one side of a write to the other.
			barrier++
			continue
		}
		c := analyze(st)
		if c == nil {
			m.stats.Ineligible++
			continue
		}
		c.fp = fmt.Sprintf("%d\x1e%s", barrier, c.fp)
		cands[i] = c
		g, ok := groups[c.fp]
		if !ok {
			g = &group{}
			groups[c.fp] = g
			order = append(order, c.fp)
		}
		g.members = append(g.members, i)
		g.cands = append(g.cands, c)
	}

	// Partition each multi-member group into IN-width chunks of distinct
	// values. Duplicate match values (possible with dedup disabled) share
	// the chunk that already carries the value.
	type chunkInfo struct {
		values [][]sqldb.Value // per chunk, distinct values in member order
		byIdx  map[int]int     // original statement index -> chunk ordinal
		stmt   []int           // per chunk, rewritten-batch index (-1 until emitted)
	}
	chunks := make(map[string]*chunkInfo)
	width := m.cfg.width()
	for _, fp := range order {
		g := groups[fp]
		if len(g.members) < 2 {
			continue
		}
		ci := &chunkInfo{byIdx: make(map[int]int)}
		seen := make(map[string]int) // value key -> chunk ordinal
		for k, idx := range g.members {
			key, _ := scalarKey(g.cands[k].matchVal)
			if ord, dup := seen[key]; dup {
				ci.byIdx[idx] = ord
				continue
			}
			if len(ci.values) == 0 || len(ci.values[len(ci.values)-1]) >= width {
				ci.values = append(ci.values, nil)
				ci.stmt = append(ci.stmt, -1)
			}
			ord := len(ci.values) - 1
			ci.values[ord] = append(ci.values[ord], g.cands[k].matchVal)
			seen[key] = ord
			ci.byIdx[idx] = ord
		}
		chunks[fp] = ci
	}

	// Emit pass: walk originals in order; each merged statement is emitted
	// at its chunk's first member, so relative order with pass-through
	// statements (and any write barrier) is preserved.
	for i, st := range stmts {
		c := cands[i]
		var ci *chunkInfo
		if c != nil {
			ci = chunks[c.fp]
		}
		if ci == nil {
			// Pass-through: write, ineligible, or singleton group.
			p.routes[i] = route{stmtIdx: len(p.Stmts)}
			p.Stmts = append(p.Stmts, st)
			continue
		}
		ord := ci.byIdx[i]
		if ci.stmt[ord] == -1 {
			sql, args, err := renderMerged(c, ci.values[ord])
			if err != nil {
				// Defensive fallback — candidate shapes are all
				// renderer-supported, but never let a render bug change
				// results: execute this statement unmerged.
				p.routes[i] = route{stmtIdx: len(p.Stmts)}
				p.Stmts = append(p.Stmts, st)
				m.stats.Ineligible++
				continue
			}
			ci.stmt[ord] = len(p.Stmts)
			p.Stmts = append(p.Stmts, driver.Stmt{SQL: sql, Args: args})
			m.stats.Groups++
		}
		p.routes[i] = route{
			stmtIdx: ci.stmt[ord],
			merged:  true,
			key:     c.matchVal,
			col:     c.matchRef.Name,
		}
		m.stats.Merged++
	}
	m.stats.Saved += int64(p.Saved())
	return p
}

// Demux routes the rewritten batch's results back to the original
// statements: pass-through statements forward their ResultSet unchanged,
// and each merged statement's rows are partitioned by the match column.
// Originals whose key matched no row receive an empty ResultSet with the
// merged statement's columns — exactly what their own execution would have
// returned.
func (p *Plan) Demux(results []*sqldb.ResultSet) ([]*sqldb.ResultSet, error) {
	if len(results) != len(p.Stmts) {
		return nil, fmt.Errorf("merge: demux: %d results for %d statements", len(results), len(p.Stmts))
	}
	out := make([]*sqldb.ResultSet, len(p.routes))
	for i, r := range p.routes {
		rs := results[r.stmtIdx]
		if !r.merged {
			out[i] = rs
			continue
		}
		ci, ok := rs.ColIndex(r.col)
		if !ok {
			return nil, fmt.Errorf("merge: demux: merged result lacks match column %q", r.col)
		}
		sub := &sqldb.ResultSet{Cols: rs.Cols}
		for _, row := range rs.Rows {
			if sqldb.Equal(sqldb.Normalize(row[ci]), r.key) {
				sub.Rows = append(sub.Rows, row)
			}
		}
		sub.RowsScanned = len(sub.Rows)
		if p.m != nil {
			p.m.mu.Lock()
			p.m.stats.RowsDemuxed += int64(len(sub.Rows))
			p.m.mu.Unlock()
		}
		out[i] = sub
	}
	return out, nil
}
