package merge

import (
	"fmt"
	"strings"

	"repro/internal/sqldb"
	"repro/internal/sqldb/sqlparse"
)

// renderer turns sqlparse expression trees back into SQL text. It runs in
// one of two modes:
//
//   - emit mode (resolve == false): every Literal and Param renders as a `?`
//     placeholder and its value is appended to args, producing an executable
//     statement whose argument list is rebuilt in render order. Emitting all
//     values as parameters sidesteps literal round-tripping (string quoting,
//     float formats) entirely.
//   - fingerprint mode (resolve == true): Literals and Params render as
//     their formatted values, so two statements that differ only in SQL
//     spelling (`id = 3` vs `id = ?` with arg 3) fingerprint identically.
//     Fingerprint output is never parsed, only compared.
type renderer struct {
	sb      strings.Builder
	resolve bool
	inArgs  []sqldb.Value // original statement args (Param lookup)
	outArgs []sqldb.Value // rebuilt args (emit mode)
	err     error
}

func (r *renderer) fail(format string, a ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("merge: render: "+format, a...)
	}
}

func (r *renderer) str(s string) { r.sb.WriteString(s) }

func (r *renderer) value(v sqldb.Value) {
	if r.resolve {
		r.str(sqldb.Format(sqldb.Normalize(v)))
		return
	}
	r.str("?")
	r.outArgs = append(r.outArgs, v)
}

func (r *renderer) expr(e sqlparse.Expr) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		r.value(x.Value)
	case *sqlparse.Param:
		if x.Index < 0 || x.Index >= len(r.inArgs) {
			r.fail("param %d out of range (%d args)", x.Index, len(r.inArgs))
			return
		}
		r.value(r.inArgs[x.Index])
	case *sqlparse.ColRef:
		r.str(x.String())
	case *sqlparse.Binary:
		r.str("(")
		r.expr(x.L)
		r.str(" " + x.Op.String() + " ")
		r.expr(x.R)
		r.str(")")
	case *sqlparse.Unary:
		if x.Neg {
			r.str("(-")
		} else {
			r.str("(NOT ")
		}
		r.expr(x.Expr)
		r.str(")")
	case *sqlparse.FuncCall:
		r.str(x.Name + "(")
		if x.Star {
			r.str("*")
		}
		for i, a := range x.Args {
			if i > 0 {
				r.str(", ")
			}
			r.expr(a)
		}
		r.str(")")
	case *sqlparse.InList:
		r.expr(x.Expr)
		if x.Not {
			r.str(" NOT")
		}
		r.str(" IN (")
		for i, a := range x.List {
			if i > 0 {
				r.str(", ")
			}
			r.expr(a)
		}
		r.str(")")
	case *sqlparse.IsNullExpr:
		r.expr(x.Expr)
		if x.Not {
			r.str(" IS NOT NULL")
		} else {
			r.str(" IS NULL")
		}
	case *sqlparse.LikeExpr:
		r.expr(x.Expr)
		if x.Not {
			r.str(" NOT")
		}
		r.str(" LIKE ")
		r.expr(x.Pattern)
	case *sqlparse.BetweenExpr:
		r.expr(x.Expr)
		r.str(" BETWEEN ")
		r.expr(x.Lo)
		r.str(" AND ")
		r.expr(x.Hi)
	default:
		r.fail("unsupported expression %T", e)
	}
}

func (r *renderer) selectExpr(se sqlparse.SelectExpr) {
	switch {
	case se.Star && se.StarTable == "":
		r.str("*")
	case se.Star:
		r.str(se.StarTable + ".*")
	default:
		r.expr(se.Expr)
		if se.Alias != "" {
			r.str(" AS " + se.Alias)
		}
	}
}

func (r *renderer) tableRef(t sqlparse.TableRef) {
	r.str(t.Name)
	if t.Alias != "" {
		r.str(" AS " + t.Alias)
	}
}

func (r *renderer) orderBy(items []sqlparse.OrderItem) {
	if len(items) == 0 {
		return
	}
	r.str(" ORDER BY ")
	for i, ob := range items {
		if i > 0 {
			r.str(", ")
		}
		r.expr(ob.Expr)
		if ob.Desc {
			r.str(" DESC")
		}
	}
}

// renderMerged emits the merged statement for one group chunk: the shared
// projection, table, and residual conjuncts of the exemplar statement, with
// the match predicate replaced by `col IN (?, ...)` over the chunk's values.
// Every value renders as a parameter; the rebuilt argument list is returned
// alongside the SQL.
func renderMerged(c *candidate, values []sqldb.Value) (string, []sqldb.Value, error) {
	r := &renderer{inArgs: c.args}
	r.str("SELECT ")
	for i, se := range c.sel.Cols {
		if i > 0 {
			r.str(", ")
		}
		r.selectExpr(se)
	}
	r.str(" FROM ")
	r.tableRef(c.sel.From)
	r.str(" WHERE ")
	r.str(c.matchRef.String())
	r.str(" IN (")
	for i, v := range values {
		if i > 0 {
			r.str(", ")
		}
		r.value(v)
	}
	r.str(")")
	for _, other := range c.others {
		r.str(" AND ")
		r.expr(other)
	}
	r.orderBy(c.sel.OrderBy)
	if r.err != nil {
		return "", nil, r.err
	}
	return r.sb.String(), r.outArgs, nil
}

// fingerprint canonicalizes everything about a candidate except the matched
// value: table, projection, residual predicates (with argument values
// resolved), and ORDER BY. Statements with equal fingerprints differ only in
// the one equality literal and are safe to coalesce.
func fingerprint(c *candidate) (string, error) {
	r := &renderer{resolve: true, inArgs: c.args}
	r.str(strings.ToLower(c.sel.From.Name))
	r.str("\x1f")
	r.str(strings.ToLower(c.sel.From.Binding()))
	r.str("\x1f")
	for _, se := range c.sel.Cols {
		r.selectExpr(se)
		r.str(",")
	}
	r.str("\x1f")
	r.str(strings.ToLower(c.matchRef.String()))
	r.str("\x1f")
	// The match value's type is part of the shape: the engine's index
	// lookup is type-strict while general comparison promotes int/float,
	// so values of different types must never share an IN list — merging
	// them could hand a statement rows its own execution would not return.
	key, _ := scalarKey(c.matchVal)
	r.str(key[:1])
	r.str("\x1f")
	for _, other := range c.others {
		r.expr(other)
		r.str("\x1f")
	}
	r.str("\x1f")
	r.orderBy(c.sel.OrderBy)
	if r.err != nil {
		return "", r.err
	}
	return r.sb.String(), nil
}
