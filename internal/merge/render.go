package merge

import (
	"strings"

	"repro/internal/sqldb"
	"repro/internal/sqldb/sqlparse"
)

// The merge renderers are thin modes over sqlparse.Renderer:
//
//   - emit mode: every Literal and Param renders as a `?` placeholder and
//     its value is appended to args, producing an executable statement
//     whose argument list is rebuilt in render order. Emitting all values
//     as parameters sidesteps literal round-tripping (string quoting,
//     float formats) entirely.
//   - fingerprint mode: Literals and Params render as their formatted
//     values, so two statements that differ only in SQL spelling (`id = 3`
//     vs `id = ?` with arg 3) fingerprint identically. Fingerprint output
//     is never parsed, only compared.

// emitter builds executable SQL, rebuilding the argument list.
type emitter struct {
	sqlparse.Renderer
	outArgs []sqldb.Value
}

func newEmitter(inArgs []sqldb.Value) *emitter {
	e := &emitter{}
	e.Value = func(r *sqlparse.Renderer, v sqldb.Value) {
		r.WriteString("?")
		e.outArgs = append(e.outArgs, v)
	}
	e.Param = func(r *sqlparse.Renderer, idx int) {
		if idx < 0 || idx >= len(inArgs) {
			r.Fail("param %d out of range (%d args)", idx, len(inArgs))
			return
		}
		e.Value(r, inArgs[idx])
	}
	return e
}

// value renders one value not present in the expression tree (IN-list
// members, window bounds) through the emit hook.
func (e *emitter) value(v sqldb.Value) { e.Value(&e.Renderer, v) }

// newFingerprinter canonicalizes: constants resolve to formatted values.
func newFingerprinter(inArgs []sqldb.Value) *sqlparse.Renderer {
	r := &sqlparse.Renderer{}
	r.Param = func(r *sqlparse.Renderer, idx int) {
		if idx < 0 || idx >= len(inArgs) {
			r.Fail("param %d out of range (%d args)", idx, len(inArgs))
			return
		}
		r.WriteString(sqldb.Format(sqldb.Normalize(inArgs[idx])))
	}
	r.Value = func(r *sqlparse.Renderer, v sqldb.Value) {
		r.WriteString(sqldb.Format(sqldb.Normalize(v)))
	}
	return r
}

// renderMergedFn is the merged-statement renderer, indirected so tests can
// force the defensive pass-through fallback in Rewrite.
var renderMergedFn = renderMerged

// renderMerged emits the merged statement for one group chunk. members are
// the chunk's candidates in first-occurrence order (deduplicated); c is the
// exemplar whose projection and residual conjuncts every member shares.
// The prologue (projection, FROM), the residual conjuncts, and the
// trailing clause are shared emit paths; only the projection head and the
// match predicate vary per family:
//
//   - equality:  shared cols ... WHERE col IN (?, ...) [ORDER BY]
//   - aggregate: key col + aggregate calls positionally (labels are
//     irrelevant — demux reads by position and re-labels with the
//     original's own output labels) ... WHERE col IN (?, ...) GROUP BY col
//   - range:     shared cols ... WHERE (OR of explicit bound comparisons)
//     [ORDER BY]
func renderMerged(c *candidate, members []*candidate) (string, []sqldb.Value, error) {
	e := newEmitter(c.args)
	e.WriteString("SELECT ")
	if c.fam == FamilyAggregate {
		e.WriteString(c.matchRef.String())
		for _, fc := range c.aggs {
			e.WriteString(", ")
			e.Expr(fc)
		}
	} else {
		for i, se := range c.sel.Cols {
			if i > 0 {
				e.WriteString(", ")
			}
			e.SelectExpr(se)
		}
	}
	e.WriteString(" FROM ")
	e.TableRef(c.sel.From)
	e.WriteString(" WHERE ")
	if c.fam == FamilyRange {
		e.windowList(c.matchRef.String(), members)
	} else {
		e.inList(c.matchRef.String(), members)
	}
	for _, other := range c.others {
		e.WriteString(" AND ")
		e.Expr(other)
	}
	if c.fam == FamilyAggregate {
		e.GroupBy([]sqlparse.ColRef{*c.matchRef})
	} else {
		e.OrderBy(c.sel.OrderBy)
	}
	sql, err := e.SQL()
	if err != nil {
		return "", nil, err
	}
	return sql, e.outArgs, nil
}

// inList emits `col IN (?, ...)` over the members' match values.
func (e *emitter) inList(col string, members []*candidate) {
	e.WriteString(col)
	e.WriteString(" IN (")
	for i, m := range members {
		if i > 0 {
			e.WriteString(", ")
		}
		e.value(m.matchVal)
	}
	e.WriteString(")")
}

// windowList emits a parenthesized OR of explicit bound comparisons over
// the members' windows.
func (e *emitter) windowList(col string, members []*candidate) {
	e.WriteString("(")
	for i, m := range members {
		if i > 0 {
			e.WriteString(" OR ")
		}
		e.WriteString("(" + col)
		if m.win.loStrict {
			e.WriteString(" > ")
		} else {
			e.WriteString(" >= ")
		}
		e.value(m.win.lo)
		e.WriteString(" AND " + col)
		if m.win.hiStrict {
			e.WriteString(" < ")
		} else {
			e.WriteString(" <= ")
		}
		e.value(m.win.hi)
		e.WriteString(")")
	}
	e.WriteString(")")
}

// fingerprint canonicalizes everything about a candidate except its varying
// part — the matched value (equality, aggregate) or the window bounds
// (range): family, table, projection, residual predicates (with argument
// values resolved), and ORDER BY. Statements with equal fingerprints differ
// only in that one varying part and are safe to coalesce.
func fingerprint(c *candidate) (string, error) {
	r := newFingerprinter(c.args)
	r.WriteString(c.fam.String())
	r.WriteString("\x1f")
	r.WriteString(strings.ToLower(c.sel.From.Name))
	r.WriteString("\x1f")
	r.WriteString(strings.ToLower(c.sel.From.Binding()))
	r.WriteString("\x1f")
	for _, se := range c.sel.Cols {
		r.SelectExpr(se)
		r.WriteString(",")
	}
	r.WriteString("\x1f")
	r.WriteString(strings.ToLower(c.matchRef.String()))
	r.WriteString("\x1f")
	switch c.fam {
	case FamilyRange:
		// Bound class is part of the shape: all of a group's windows must
		// compare against the column the same way, so a class mismatch
		// cannot make the merged OR-eval fail where an original would not.
		cls, _ := rangeClass(c.win.lo)
		r.WriteString(cls)
	default:
		// The match value's type is part of the shape: the engine's index
		// lookup is type-strict while general comparison promotes
		// int/float, so values of different types must never share an IN
		// list — merging them could hand a statement rows its own
		// execution would not return.
		key, _ := scalarKey(c.matchVal)
		r.WriteString(key[:1])
	}
	r.WriteString("\x1f")
	for _, other := range c.others {
		r.Expr(other)
		r.WriteString("\x1f")
	}
	r.WriteString("\x1f")
	r.OrderBy(c.sel.OrderBy)
	sql, err := r.SQL()
	if err != nil {
		return "", err
	}
	return sql, nil
}
