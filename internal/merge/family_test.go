package merge_test

import (
	"reflect"
	"testing"

	"repro/internal/driver"
	"repro/internal/merge"
	"repro/internal/sqldb"
)

func countOf(grp int64) driver.Stmt {
	return driver.Stmt{SQL: "SELECT COUNT(*) AS n FROM kv WHERE grp = ?", Args: []sqldb.Value{grp}}
}

func TestAggregateFamilyMerges(t *testing.T) {
	plan := rewrite(t, merge.Config{Enabled: true}, []driver.Stmt{countOf(0), countOf(1), countOf(2)})
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d: %+v", len(plan.Stmts), plan.Stmts)
	}
	want := "SELECT grp, COUNT(*) FROM kv WHERE grp IN (?, ?, ?) GROUP BY grp"
	if plan.Stmts[0].SQL != want {
		t.Fatalf("merged SQL = %q, want %q", plan.Stmts[0].SQL, want)
	}
	if got := plan.SavedByFamily()[merge.FamilyAggregate]; got != 2 {
		t.Fatalf("aggregate family saved = %d, want 2", got)
	}
}

func TestAggregateFamilyDisabled(t *testing.T) {
	plan := rewrite(t, merge.Config{Enabled: true, DisableAggregates: true},
		[]driver.Stmt{countOf(0), countOf(1)})
	if len(plan.Stmts) != 2 {
		t.Fatalf("aggregates merged despite DisableAggregates: %v", plan.Stmts)
	}
}

// TestAggregateEndToEnd executes a per-key aggregate fan-out both ways and
// requires identical per-original results, including the zero-count row for
// a key matching nothing and NULL sums over empty sets.
func TestAggregateEndToEnd(t *testing.T) {
	conn := newKV(t, 30)
	mk := func(sql string, grp int64) driver.Stmt {
		return driver.Stmt{SQL: sql, Args: []sqldb.Value{grp}}
	}
	stmts := []driver.Stmt{
		countOf(0),
		countOf(1),
		countOf(999), // no such group: demux must synthesize the 0 row
		mk("SELECT SUM(id) AS total, MIN(id), MAX(id) FROM kv WHERE grp = ?", 0),
		mk("SELECT SUM(id) AS total, MIN(id), MAX(id) FROM kv WHERE grp = ?", 2),
		mk("SELECT SUM(id) AS total, MIN(id), MAX(id) FROM kv WHERE grp = ?", 999), // NULL row
		mk("SELECT AVG(id) FROM kv WHERE grp = ?", 1),
		mk("SELECT AVG(id) FROM kv WHERE grp = ?", 2),
	}

	plain, err := conn.ExecBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}

	m := merge.New(merge.Config{Enabled: true})
	plan := m.Rewrite(stmts)
	if len(plan.Stmts) != 3 { // one per aggregate shape
		t.Fatalf("want 3 merged statements, got %d: %v", len(plan.Stmts), plan.Stmts)
	}
	mergedResults, err := conn.ExecBatch(plan.Stmts)
	if err != nil {
		t.Fatal(err)
	}
	demuxed, err := plan.Demux(mergedResults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		if !reflect.DeepEqual(plain[i].Cols, demuxed[i].Cols) {
			t.Errorf("stmt %d: cols %v vs %v", i, plain[i].Cols, demuxed[i].Cols)
		}
		if !reflect.DeepEqual(plain[i].Rows, demuxed[i].Rows) {
			t.Errorf("stmt %d: rows differ\nplain:  %v\nmerged: %v", i, plain[i].Rows, demuxed[i].Rows)
		}
	}
	if got := m.Stats().SavedByFamily[merge.FamilyAggregate]; got != 5 {
		t.Fatalf("aggregate family saved = %d, want 5", got)
	}
}

// TestAggregateResidualConjuncts pins the itracker userList shape: a COUNT
// with a residual predicate shared across the family.
func TestAggregateResidualConjuncts(t *testing.T) {
	mk := func(id int64) driver.Stmt {
		return driver.Stmt{
			SQL:  "SELECT COUNT(*) AS n FROM kv WHERE grp = ? AND id < 20",
			Args: []sqldb.Value{id},
		}
	}
	conn := newKV(t, 30)
	stmts := []driver.Stmt{mk(0), mk(1), mk(2)}
	plain, err := conn.ExecBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	m := merge.New(merge.Config{Enabled: true})
	plan := m.Rewrite(stmts)
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d: %v", len(plan.Stmts), plan.Stmts)
	}
	mergedResults, err := conn.ExecBatch(plan.Stmts)
	if err != nil {
		t.Fatal(err)
	}
	demuxed, err := plan.Demux(mergedResults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		if !reflect.DeepEqual(plain[i].Rows, demuxed[i].Rows) {
			t.Errorf("stmt %d: rows differ: plain %v merged %v", i, plain[i].Rows, demuxed[i].Rows)
		}
	}
}

// TestAggregateDuplicateKeysShareGroup: with dedup disabled upstream the
// same count can appear twice; both originals get the same synthesized row
// and the duplicate key is listed once.
func TestAggregateDuplicateKeysShareGroup(t *testing.T) {
	conn := newKV(t, 30)
	stmts := []driver.Stmt{countOf(1), countOf(2), countOf(1)}
	plain, err := conn.ExecBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	m := merge.New(merge.Config{Enabled: true})
	plan := m.Rewrite(stmts)
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d", len(plan.Stmts))
	}
	if got := len(plan.Stmts[0].Args); got != 2 {
		t.Fatalf("duplicate key should be listed once: args %v", plan.Stmts[0].Args)
	}
	mergedResults, err := conn.ExecBatch(plan.Stmts)
	if err != nil {
		t.Fatal(err)
	}
	demuxed, err := plan.Demux(mergedResults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		if !reflect.DeepEqual(plain[i].Rows, demuxed[i].Rows) {
			t.Errorf("stmt %d: rows differ: plain %v merged %v", i, plain[i].Rows, demuxed[i].Rows)
		}
	}
}

func rangeStmt(lo, hi int64) driver.Stmt {
	return driver.Stmt{
		SQL:  "SELECT id, v, grp FROM kv WHERE id >= ? AND id < ?",
		Args: []sqldb.Value{lo, hi},
	}
}

func TestRangeFamilyMerges(t *testing.T) {
	plan := rewrite(t, merge.Config{Enabled: true}, []driver.Stmt{rangeStmt(1, 5), rangeStmt(10, 15)})
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d: %+v", len(plan.Stmts), plan.Stmts)
	}
	want := "SELECT id, v, grp FROM kv WHERE ((id >= ? AND id < ?) OR (id >= ? AND id < ?))"
	if plan.Stmts[0].SQL != want {
		t.Fatalf("merged SQL = %q, want %q", plan.Stmts[0].SQL, want)
	}
	if got := plan.SavedByFamily()[merge.FamilyRange]; got != 1 {
		t.Fatalf("range family saved = %d, want 1", got)
	}
}

func TestRangeFamilyDisabled(t *testing.T) {
	plan := rewrite(t, merge.Config{Enabled: true, DisableRanges: true},
		[]driver.Stmt{rangeStmt(1, 5), rangeStmt(10, 15)})
	if len(plan.Stmts) != 2 {
		t.Fatalf("ranges merged despite DisableRanges: %v", plan.Stmts)
	}
}

// TestRangeEndToEnd executes overlapping, disjoint, BETWEEN-form, and
// empty windows both ways and requires identical per-original results —
// overlap means one merged row can route to several originals.
func TestRangeEndToEnd(t *testing.T) {
	conn := newKV(t, 30)
	between := func(lo, hi int64) driver.Stmt {
		return driver.Stmt{
			SQL:  "SELECT id, v, grp FROM kv WHERE id BETWEEN ? AND ?",
			Args: []sqldb.Value{lo, hi},
		}
	}
	stmts := []driver.Stmt{
		rangeStmt(1, 6),
		rangeStmt(4, 9),     // overlaps the first
		rangeStmt(100, 110), // empty window
		between(2, 7),       // inclusive form, merges with the half-open ones
		between(25, 28),
	}
	plain, err := conn.ExecBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	m := merge.New(merge.Config{Enabled: true})
	plan := m.Rewrite(stmts)
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d: %v", len(plan.Stmts), plan.Stmts)
	}
	mergedResults, err := conn.ExecBatch(plan.Stmts)
	if err != nil {
		t.Fatal(err)
	}
	demuxed, err := plan.Demux(mergedResults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		if !reflect.DeepEqual(plain[i].Cols, demuxed[i].Cols) {
			t.Errorf("stmt %d: cols %v vs %v", i, plain[i].Cols, demuxed[i].Cols)
		}
		if !reflect.DeepEqual(plain[i].Rows, demuxed[i].Rows) {
			t.Errorf("stmt %d: rows differ\nplain:  %v\nmerged: %v", i, plain[i].Rows, demuxed[i].Rows)
		}
	}
}

// TestRangeOrderByPreserved checks per-window row order of an ORDER BY
// range group against standalone execution.
func TestRangeOrderByPreserved(t *testing.T) {
	conn := newKV(t, 30)
	mk := func(lo, hi int64) driver.Stmt {
		return driver.Stmt{
			SQL:  "SELECT id, v, grp FROM kv WHERE id >= ? AND id < ? ORDER BY id DESC",
			Args: []sqldb.Value{lo, hi},
		}
	}
	stmts := []driver.Stmt{mk(1, 10), mk(5, 20)}
	plain, err := conn.ExecBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	m := merge.New(merge.Config{Enabled: true})
	plan := m.Rewrite(stmts)
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d", len(plan.Stmts))
	}
	results, err := conn.ExecBatch(plan.Stmts)
	if err != nil {
		t.Fatal(err)
	}
	demuxed, err := plan.Demux(results)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		if !reflect.DeepEqual(plain[i].Rows, demuxed[i].Rows) {
			t.Errorf("stmt %d: order not preserved\nplain:  %v\nmerged: %v", i, plain[i].Rows, demuxed[i].Rows)
		}
	}
}

// TestRangeDuplicateWindowsShareDisjunct: identical windows (dedup
// disabled upstream) share one disjunct and both originals get the rows.
func TestRangeDuplicateWindowsShareDisjunct(t *testing.T) {
	conn := newKV(t, 30)
	stmts := []driver.Stmt{rangeStmt(3, 8), rangeStmt(3, 8)}
	plain, err := conn.ExecBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	m := merge.New(merge.Config{Enabled: true})
	plan := m.Rewrite(stmts)
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d", len(plan.Stmts))
	}
	if got := len(plan.Stmts[0].Args); got != 2 { // one window: lo, hi
		t.Fatalf("duplicate window should render once: args %v", plan.Stmts[0].Args)
	}
	results, err := conn.ExecBatch(plan.Stmts)
	if err != nil {
		t.Fatal(err)
	}
	demuxed, err := plan.Demux(results)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		if !reflect.DeepEqual(plain[i].Rows, demuxed[i].Rows) {
			t.Errorf("stmt %d: rows differ: plain %v merged %v", i, plain[i].Rows, demuxed[i].Rows)
		}
	}
}

// TestRangeMixedClassesDoNotMerge: numeric and string windows over the
// same column must not share a merged OR — the merged eval could fail
// where the originals would not.
func TestRangeMixedClassesDoNotMerge(t *testing.T) {
	stmts := []driver.Stmt{
		{SQL: "SELECT v FROM kv WHERE v >= ? AND v < ?", Args: []sqldb.Value{"a", "m"}},
		{SQL: "SELECT v FROM kv WHERE v >= ? AND v < ?", Args: []sqldb.Value{int64(1), int64(5)}},
	}
	plan := rewrite(t, merge.Config{Enabled: true}, stmts)
	if len(plan.Stmts) != 2 {
		t.Fatalf("mixed-class windows merged: %v", plan.Stmts)
	}
}

// TestRangeColumnNotProjectedIneligible: membership demux needs the range
// column's values.
func TestRangeColumnNotProjectedIneligible(t *testing.T) {
	mk := func(lo int64) driver.Stmt {
		return driver.Stmt{SQL: "SELECT v FROM kv WHERE id >= ? AND id < ?", Args: []sqldb.Value{lo, lo + 5}}
	}
	plan := rewrite(t, merge.Config{Enabled: true}, []driver.Stmt{mk(1), mk(10)})
	if len(plan.Stmts) != 2 {
		t.Fatalf("unprojected range column merged: %v", plan.Stmts)
	}
}

// TestEqualityPreferredOverRange: a statement carrying both an equality
// conjunct and a window merges under the (index-accelerable) equality
// family, with the window as a residual conjunct.
func TestEqualityPreferredOverRange(t *testing.T) {
	mk := func(grp int64) driver.Stmt {
		return driver.Stmt{
			SQL:  "SELECT id, v, grp FROM kv WHERE grp = ? AND id >= 0 AND id < 100",
			Args: []sqldb.Value{grp},
		}
	}
	plan := rewrite(t, merge.Config{Enabled: true}, []driver.Stmt{mk(0), mk(1)})
	if len(plan.Stmts) != 1 {
		t.Fatalf("want 1 merged statement, got %d", len(plan.Stmts))
	}
	if got := plan.SavedByFamily()[merge.FamilyEquality]; got != 1 {
		t.Fatalf("expected the equality family to claim the group: %+v", plan.SavedByFamily())
	}
}

// TestDemuxProRatesRowsScanned pins the scan-accounting fix: the demuxed
// shares of a merged statement's RowsScanned must sum to the merged
// statement's actual scan count, not to the per-original row counts.
func TestDemuxProRatesRowsScanned(t *testing.T) {
	plan := rewrite(t, merge.Config{Enabled: true}, []driver.Stmt{point(1), point(2), point(3)})
	merged := &sqldb.ResultSet{
		Cols:        []string{"id", "v"},
		Rows:        [][]sqldb.Value{{int64(3), "c"}, {int64(1), "a"}},
		RowsScanned: 8, // merged execution visited 8 physical rows
	}
	out, err := plan.Demux([]*sqldb.ResultSet{merged})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rs := range out {
		total += rs.RowsScanned
	}
	if total != 8 {
		t.Fatalf("demuxed RowsScanned sum = %d, want the merged statement's 8", total)
	}
	// Earlier routes absorb the remainder: 8 over 3 routes = 3, 3, 2.
	for i, want := range []int{3, 3, 2} {
		if out[i].RowsScanned != want {
			t.Fatalf("route %d RowsScanned = %d, want %d (all: %v)", i, out[i].RowsScanned,
				want, []int{out[0].RowsScanned, out[1].RowsScanned, out[2].RowsScanned})
		}
	}
}

// TestMergedAggregateStatementCount sanity-checks the width cap applies to
// aggregate families too.
func TestAggregateMaxInWidthChunks(t *testing.T) {
	stmts := make([]driver.Stmt, 6)
	for i := range stmts {
		stmts[i] = countOf(int64(i))
	}
	plan := rewrite(t, merge.Config{Enabled: true, MaxInWidth: 4}, stmts)
	if len(plan.Stmts) != 2 { // 4 + 2
		t.Fatalf("want 2 chunks, got %d: %v", len(plan.Stmts), plan.Stmts)
	}
	for i, width := range []int{4, 2} {
		if got := len(plan.Stmts[i].Args); got != width {
			t.Fatalf("chunk %d width = %d, want %d", i, got, width)
		}
	}
}
