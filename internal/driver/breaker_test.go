package driver

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// TestFaultOutageAndRecovery: inside a scheduled outage window every batch
// fails transiently with the virtual failure time carried in the returned
// completion; past the window the same batch succeeds — the recovery
// contract the dispatch retry loop is built on.
func TestFaultOutageAndRecovery(t *testing.T) {
	_, srv, conn := rig(t, time.Millisecond)
	srv.SetFaults(faults.NewPlane(faults.Config{
		Outages: []faults.Outage{{Shard: 0, From: 0, To: 5 * time.Millisecond}},
	}))
	stmts := []Stmt{{SQL: "SELECT v FROM kv WHERE k = 2"}}
	_, failAt, err := conn.ExecBatchAt(2*time.Millisecond, stmts)
	if !errors.Is(err, faults.ErrTransient) || !faults.Injected(err) {
		t.Fatalf("inside outage: err = %v", err)
	}
	if failAt <= 2*time.Millisecond {
		t.Fatalf("failure observed at %v, want after arrival (wasted trip)", failAt)
	}
	if got := conn.Link().Stats().RoundTrips; got != 1 {
		t.Fatalf("failed attempt charged %d trips, want 1", got)
	}
	results, _, err := conn.ExecBatchAt(6*time.Millisecond, stmts)
	if err != nil || results[0].Rows[0][0] != "two" {
		t.Fatalf("after outage: results=%v err=%v", results, err)
	}
	srv.SetFaults(nil)
	if _, _, err := conn.ExecBatchAt(3*time.Millisecond, stmts); err != nil {
		t.Fatalf("plane uninstalled: %v", err)
	}
}

// TestFaultLinkTimeoutHook: installing the plane on the server points the
// connection's link hook at it, and a timed-out trip lands in the link's
// Timeouts counter with the failure observed after the wasted delay.
func TestFaultLinkTimeoutHook(t *testing.T) {
	_, srv, conn := rig(t, time.Millisecond)
	srv.SetFaults(faults.NewPlane(faults.Config{
		LinkTimeoutRate: 1,
		LinkTimeout:     3 * time.Millisecond,
	}))
	_, failAt, err := conn.ExecBatchAt(time.Millisecond, []Stmt{{SQL: "SELECT * FROM kv"}})
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if failAt != 4*time.Millisecond {
		t.Fatalf("failAt = %v, want arrival + timeout = 4ms", failAt)
	}
	if s := conn.Link().Stats(); s.Timeouts != 1 {
		t.Fatalf("link timeouts = %d, want 1", s.Timeouts)
	}
}

// TestFaultPoisonPermanent: a poisoned argument fails the batch with a
// permanent, non-retriable, injected error.
func TestFaultPoisonPermanent(t *testing.T) {
	_, srv, conn := rig(t, time.Millisecond)
	srv.SetFaults(faults.NewPlane(faults.Config{PoisonArgs: []sqldb.Value{int64(2)}}))
	_, _, err := conn.ExecBatchAt(0, []Stmt{
		{SQL: "SELECT v FROM kv WHERE k = ?", Args: []sqldb.Value{int64(1)}},
		{SQL: "SELECT v FROM kv WHERE k = ?", Args: []sqldb.Value{int64(2)}},
	})
	if !errors.Is(err, faults.ErrPermanent) || faults.Retriable(err) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := conn.ExecBatchAt(0, []Stmt{
		{SQL: "SELECT v FROM kv WHERE k = ?", Args: []sqldb.Value{int64(1)}},
	}); err != nil {
		t.Fatalf("clean statement: %v", err)
	}
}

// TestBreakerStateMachine walks the full trip → fail-fast → half-open
// probe → close cycle on the virtual clock and checks the transition
// counters that the reproducibility assertions compare.
func TestBreakerStateMachine(t *testing.T) {
	_, srv, conn := rig(t, time.Millisecond)
	reg := obs.NewRegistry()
	srv.SetMetrics(reg)
	srv.SetFaults(faults.NewPlane(faults.Config{
		Outages: []faults.Outage{{Shard: 0, From: 0, To: 10 * time.Millisecond}},
		Breaker: faults.Breaker{Threshold: 2, Cooldown: 4 * time.Millisecond},
	}))
	stmts := []Stmt{{SQL: "SELECT v FROM kv WHERE k = 1"}}

	// Two consecutive outage failures trip the breaker...
	for i := 0; i < 2; i++ {
		at := time.Duration(i) * time.Millisecond
		if _, _, err := conn.ExecBatchAt(at, stmts); !errors.Is(err, faults.ErrTransient) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", st.BreakerTrips)
	}
	// ...so the next attempt inside the cooldown fails fast: locally, with
	// no round trip charged.
	trips := conn.Link().Stats().RoundTrips
	_, failAt, err := conn.ExecBatchAt(3*time.Millisecond, stmts)
	if !errors.Is(err, faults.ErrBreakerOpen) {
		t.Fatalf("inside cooldown: %v", err)
	}
	if failAt != 3*time.Millisecond {
		t.Fatalf("fast fail observed at %v, want arrival", failAt)
	}
	if got := conn.Link().Stats().RoundTrips; got != trips {
		t.Fatalf("fast fail charged a round trip (%d -> %d)", trips, got)
	}
	// Past the cooldown the breaker half-opens; the probe still lands in
	// the outage window, so it fails and re-opens for a fresh cooldown.
	if _, _, err := conn.ExecBatchAt(6*time.Millisecond, stmts); !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("failed probe: %v", err)
	}
	st = srv.Stats()
	if st.BreakerProbes != 1 || st.BreakerTrips != 2 {
		t.Fatalf("after failed probe: probes=%d trips=%d, want 1/2", st.BreakerProbes, st.BreakerTrips)
	}
	// A probe past the outage window succeeds and closes the breaker.
	if _, _, err := conn.ExecBatchAt(11*time.Millisecond, stmts); err != nil {
		t.Fatalf("closing probe: %v", err)
	}
	st = srv.Stats()
	if st.BreakerProbes != 2 || st.BreakerFastFails != 1 {
		t.Fatalf("final: %+v", st)
	}
	if _, _, err := conn.ExecBatchAt(12*time.Millisecond, stmts); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
	if reg.Counter("db.breaker.trips").Value() != 2 ||
		reg.Counter("db.breaker.fast_fails").Value() != 1 ||
		reg.Counter("db.breaker.probes").Value() != 2 {
		t.Fatalf("metric shadows diverged from stats")
	}
}

// TestFaultSlowdownShiftsCompletion: a latency spike stretches completion
// deterministically without touching results.
func TestFaultSlowdownShiftsCompletion(t *testing.T) {
	_, srv, conn := rig(t, time.Millisecond)
	stmts := []Stmt{{SQL: "SELECT v FROM kv WHERE k = 3"}}
	// Both arrivals land on an idle lane (well past the rig's setup
	// statements), so their latencies differ by exactly the spike.
	_, base, err := conn.ExecBatchAt(20*time.Millisecond, stmts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFaults(faults.NewPlane(faults.Config{
		Slowdowns: []faults.Slowdown{{Shard: 0, From: 40 * time.Millisecond, To: 60 * time.Millisecond, Extra: 2 * time.Millisecond}},
	}))
	results, done, err := conn.ExecBatchAt(50*time.Millisecond, stmts)
	if err != nil || results[0].Rows[0][0] != "three" {
		t.Fatalf("results=%v err=%v", results, err)
	}
	if done-50*time.Millisecond != base-20*time.Millisecond+2*time.Millisecond {
		t.Fatalf("spiked latency = %v, want baseline %v + 2ms", done-50*time.Millisecond, base-20*time.Millisecond)
	}
}
