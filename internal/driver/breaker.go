package driver

import (
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
)

// This file wires the deterministic fault plane (internal/faults) into the
// server's exec path and implements the per-shard circuit breaker on top
// of it. All injected failures fire BEFORE a batch executes (see
// preExecFault), so a failed attempt never has data effects and the
// dispatch layer may retry any batch — reads and pipelined writes alike —
// without risking double execution.

// breaker is one shard's circuit-breaker state, guarded by Server.mu.
//
// State machine: CLOSED counts consecutive injected shard failures and
// trips OPEN at the configured threshold; OPEN rejects batches locally
// (fail fast, no round trip) until the cooldown expires on the virtual
// clock; past openUntil the breaker is HALF-OPEN — the next batch goes
// through as a probe, closing the breaker if it clears injection and
// re-opening it (for a fresh cooldown) if it does not.
//
// Determinism caveat: the breaker is the one deliberately ORDER-DEPENDENT
// piece of the fault plane. "Consecutive failures" is a property of the
// host-time order in which concurrent sessions' batches reach the server,
// so breaker transitions are reproducible for serialized workloads (one
// session, or shared dispatch where the hub serializes windows) but not
// across arbitrary concurrent interleavings. The determinism tests run
// with the breaker disabled; the chaos hammer runs with it enabled and
// asserts only safety, not schedules.
type breaker struct {
	fails     int // consecutive counted failures while closed
	open      bool
	openUntil time.Duration
}

// SetFaults installs plane as the server's fault schedule (nil uninstalls),
// sizing the per-shard breaker array from the plane's breaker config and
// pointing every connected link's failure hook at the plane — links
// connected later inherit it via Connect. Call between replays, not while
// batches are in flight: the exec path reads the plane pointer without
// locking.
func (s *Server) SetFaults(plane *faults.Plane) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = plane
	s.brk = nil
	s.brkCfg = faults.Breaker{}
	if plane != nil {
		s.brkCfg = plane.Config().Breaker
		if s.brkCfg.Threshold > 0 {
			s.brk = make([]breaker, s.shards)
		}
	}
	for _, l := range s.links {
		if plane != nil {
			l.SetFault(plane)
		} else {
			l.SetFault(nil)
		}
	}
}

// Faults returns the installed fault plane (nil when infallible).
func (s *Server) Faults() *faults.Plane { return s.faults }

// touchedShards expands an occupancy mask into the shard indexes a batch
// lands on: the set bits, or every shard when the mask is 0 (unroutable
// batch, or an unsharded store).
func (s *Server) touchedShards(mask uint64) []int {
	shards := make([]int, 0, s.shards)
	for sh := 0; sh < s.shards; sh++ {
		if mask == 0 || mask&(1<<uint(sh)) != 0 {
			shards = append(shards, sh)
		}
	}
	return shards
}

// preExecFault runs the fault plane's pre-execution gauntlet for a batch
// arriving at `arrival` and touching `shards`. On injection it returns the
// virtual time at which the failure is OBSERVED by the session (the retry
// layer schedules its backoff from this instant) and the classified error:
//
//  1. circuit breaker — an open breaker on any touched shard rejects the
//     batch locally: no round trip, failure observed at arrival;
//  2. link timeout — the request is lost in flight and the failure is
//     observed only after the timeout's wasted delay (the link hook has
//     already charged that delay to its own accounting);
//  3. poisoned arguments — the server rejects the batch permanently after
//     one wasted round trip;
//  4. per-shard outage/drop rolls — transient, one wasted round trip, and
//     the failed shard's breaker counts the failure.
//
// A batch that clears all four resets the breakers of every shard it
// touched (the shard demonstrably responded).
func (s *Server) preExecFault(link *netsim.Link, arrival time.Duration, reqBytes int, mask uint64, stmts []Stmt) (time.Duration, error) {
	shards := s.touchedShards(mask)
	if err := s.breakerCheck(shards, arrival); err != nil {
		return arrival, err
	}
	if delay, err := link.TripFault(arrival); err != nil {
		return arrival + delay, err
	}
	for _, st := range stmts {
		if err := s.faults.Poisoned(st.Args, arrival); err != nil {
			link.Charge(reqBytes, 0)
			return arrival + link.RTT(), err
		}
	}
	for _, sh := range shards {
		if err := s.faults.ShardFault(sh, arrival); err != nil {
			s.breakerFail(sh, arrival)
			link.Charge(reqBytes, 0)
			return arrival + link.RTT(), err
		}
	}
	s.breakerOK(shards)
	return 0, nil
}

// shardDelay returns the slow-shard latency spike the batch pays: the
// maximum scheduled delay over its touched shards (a scatter completes
// when its slowest shard does). Content is unaffected.
func (s *Server) shardDelay(mask uint64, arrival time.Duration) time.Duration {
	var extra time.Duration
	for _, sh := range s.touchedShards(mask) {
		if d := s.faults.ShardDelay(sh, arrival); d > extra {
			extra = d
		}
	}
	return extra
}

// breakerCheck rejects the batch if any touched shard's breaker is open
// and still cooling down at `at`; a breaker past its cooldown lets the
// batch through as a half-open probe.
func (s *Server) breakerCheck(shards []int, at time.Duration) error {
	if s.brk == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range shards {
		b := &s.brk[sh]
		if !b.open {
			continue
		}
		if at < b.openUntil {
			s.stats.BreakerFastFails++
			s.met.breakerFastFails.Add(1)
			return faults.ErrBreakerOpen
		}
		s.stats.BreakerProbes++
		s.met.breakerProbes.Add(1)
	}
	return nil
}

// breakerFail counts one injected failure against a shard's breaker,
// tripping it open (or re-opening a failed half-open probe) for a fresh
// cooldown starting at `at`.
func (s *Server) breakerFail(shard int, at time.Duration) {
	if s.brk == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &s.brk[shard]
	b.fails++
	if b.open || b.fails >= s.brkCfg.Threshold {
		b.open = true
		b.openUntil = at + s.brkCfg.Cooldown
		b.fails = 0
		s.stats.BreakerTrips++
		s.met.breakerTrips.Add(1)
	}
}

// breakerOK resets the breakers of shards that just served a batch:
// a half-open probe success closes the breaker, and any consecutive-
// failure count restarts from zero.
func (s *Server) breakerOK(shards []int) {
	if s.brk == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range shards {
		s.brk[sh] = breaker{}
	}
}
