// Package driver provides the client/server boundary of the reproduction:
// a database server wrapping the SQL engine with a per-query cost model,
// and a client connection that ships statements across a simulated network
// link. The connection offers both the conventional one-statement-per-round-
// trip API (what the original applications use) and ExecBatch, the
// reproduction of Sloth's extended JDBC driver that issues many statements
// in a single round trip and executes the read statements in parallel
// server-side (paper Sec. 5).
package driver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/sqldb"
	"repro/internal/sqldb/engine"
	"repro/internal/sqldb/sqlparse"
)

// Stmt is one statement with its positional arguments.
type Stmt struct {
	SQL  string
	Args []sqldb.Value
}

// CostModel prices server-side query execution on the virtual clock. The
// defaults approximate a warm in-memory MySQL instance: a fixed per-query
// overhead plus a per-row scan cost. BatchDispatch is the (small) marginal
// cost of each extra statement in a batch; batched reads otherwise run in
// parallel so a batch costs the max of its members, not the sum.
type CostModel struct {
	PerQuery      time.Duration
	PerRow        time.Duration
	BatchDispatch time.Duration
}

// DefaultCostModel mirrors the calibration described in DESIGN.md.
func DefaultCostModel() CostModel {
	return CostModel{
		PerQuery:      60 * time.Microsecond,
		PerRow:        700 * time.Nanosecond,
		BatchDispatch: 6 * time.Microsecond,
	}
}

// queryCost prices a single executed statement.
func (m CostModel) queryCost(rs *sqldb.ResultSet) time.Duration {
	rows := rs.RowsScanned
	if rows == 0 {
		rows = rs.RowsAffected
	}
	return m.PerQuery + time.Duration(rows)*m.PerRow
}

// ServerStats snapshots server-side accounting.
type ServerStats struct {
	Queries int64
	Batches int64
	// Rows is the total physical rows the executor visited. Batch merging
	// (internal/merge) reduces Queries while leaving Rows essentially
	// unchanged — the row work is the same, the per-statement overheads are
	// what disappear — so the pair makes the optimization legible in the
	// experiment reports.
	Rows int64
	// DBTime is total virtual time charged for query execution.
	DBTime time.Duration
}

// Server fronts an engine.DB, charging execution time to the clock.
type Server struct {
	db    *engine.DB
	clock netsim.Clock
	cost  CostModel

	mu    sync.Mutex
	stats ServerStats
}

// NewServer creates a server over db using the given clock and cost model.
func NewServer(db *engine.DB, clock netsim.Clock, cost CostModel) *Server {
	return &Server{db: db, clock: clock, cost: cost}
}

// DB returns the underlying engine (for direct data loading in fixtures).
func (s *Server) DB() *engine.DB { return s.db }

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the server counters.
func (s *Server) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = ServerStats{}
}

// execBatch runs the statements for one connection. Writes and transaction
// control execute serially in order; consecutive runs of read statements
// execute "in parallel", costing the maximum member cost plus a dispatch
// cost per statement (the behaviour of the extended driver in Sec. 5).
func (s *Server) execBatch(sess *engine.Session, stmts []Stmt) ([]*sqldb.ResultSet, time.Duration, error) {
	results := make([]*sqldb.ResultSet, 0, len(stmts))
	var total time.Duration
	var parallelMax time.Duration
	var rowsVisited int64

	flushParallel := func() {
		total += parallelMax
		parallelMax = 0
	}

	for _, st := range stmts {
		parsed, err := sqlparse.Parse(st.SQL)
		if err != nil {
			return nil, total, fmt.Errorf("driver: %w", err)
		}
		rs, err := sess.ExecStmt(parsed, st.Args)
		if err != nil {
			return nil, total, err
		}
		cost := s.cost.queryCost(rs)
		rowsVisited += int64(rs.RowsScanned)
		if sqlparse.IsWrite(parsed) {
			// Writes serialize: close the current parallel group first.
			flushParallel()
			total += cost
		} else {
			if cost > parallelMax {
				parallelMax = cost
			}
			total += s.cost.BatchDispatch
		}
		results = append(results, rs)
	}
	flushParallel()

	s.mu.Lock()
	s.stats.Queries += int64(len(stmts))
	s.stats.Batches++
	s.stats.Rows += rowsVisited
	s.stats.DBTime += total
	s.mu.Unlock()
	s.clock.Advance(total)
	return results, total, nil
}

// Conn is a client connection: an engine session reached across a link.
// Conns are not safe for concurrent use, matching JDBC connections.
type Conn struct {
	srv  *Server
	link *netsim.Link
	sess *engine.Session

	queriesSent int64
}

// Connect opens a connection to the server across link.
func (s *Server) Connect(link *netsim.Link) *Conn {
	return &Conn{srv: s, link: link, sess: s.db.NewSession()}
}

// Link exposes the connection's network link (for stats and RTT sweeps).
func (c *Conn) Link() *netsim.Link { return c.link }

// QueriesSent reports how many statements this connection has shipped.
func (c *Conn) QueriesSent() int64 { return c.queriesSent }

// ResetStats zeroes the connection counter.
func (c *Conn) ResetStats() { c.queriesSent = 0 }

// InTxn reports whether the connection has an open transaction.
func (c *Conn) InTxn() bool { return c.sess.InTxn() }

// Query executes one statement in its own round trip — the conventional
// driver behaviour used by the original (non-Sloth) applications.
func (c *Conn) Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error) {
	results, err := c.ExecBatch([]Stmt{{SQL: sql, Args: args}})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ExecBatch ships all statements to the server in one round trip and
// returns their result sets in order — the Sloth batch driver.
func (c *Conn) ExecBatch(stmts []Stmt) ([]*sqldb.ResultSet, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	reqBytes := 0
	for _, st := range stmts {
		reqBytes += len(st.SQL) + 8
		for _, a := range st.Args {
			reqBytes += sqldb.SizeOf(a)
		}
	}
	results, _, err := c.srv.execBatch(c.sess, stmts)
	if err != nil {
		return nil, err
	}
	respBytes := 0
	for _, rs := range results {
		respBytes += rs.WireSize()
	}
	c.link.RoundTrip(reqBytes, respBytes)
	c.queriesSent += int64(len(stmts))
	return results, nil
}
