// Package driver provides the client/server boundary of the reproduction:
// a database server wrapping the SQL engine with a per-query cost model,
// and a client connection that ships statements across a simulated network
// link. The connection offers both the conventional one-statement-per-round-
// trip API (what the original applications use) and ExecBatch, the
// reproduction of Sloth's extended JDBC driver that issues many statements
// in a single round trip and executes the read statements in parallel
// server-side (paper Sec. 5).
package driver

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sqldb"
	"repro/internal/sqldb/engine"
	"repro/internal/sqldb/plan"
	"repro/internal/sqldb/sqlparse"
)

// Stmt is one statement with its positional arguments.
type Stmt struct {
	SQL  string
	Args []sqldb.Value
	// Parsed is the statement's AST, populated by the query store at
	// submit time from the process-wide parse interner so SQL text is
	// parsed once per distinct template per run. Consumers (the merge
	// analyzer, the server's cost loop) use it when set and fall back to
	// the interner when nil; it never affects statement identity (Key).
	Parsed sqlparse.Statement
}

// Key canonicalizes the statement (SQL plus normalized argument values)
// for duplicate detection. It is THE canonical form: the query store's
// in-batch dedup and the shared window's cross-session coalescing both key
// on it, so they always agree on what "the same statement" means. It sits
// on the per-registration hot path (the paper's Sec. 6.6 overhead), so it
// avoids the general value formatter; see BenchmarkDedupKey.
func (st Stmt) Key() string {
	if len(st.Args) == 0 {
		return st.SQL
	}
	var sb strings.Builder
	sb.Grow(len(st.SQL) + 12*len(st.Args))
	sb.WriteString(st.SQL)
	for _, a := range st.Args {
		sb.WriteByte('\x1f')
		switch v := sqldb.Normalize(a).(type) {
		case nil:
			sb.WriteString("~")
		case int64:
			sb.WriteString(strconv.FormatInt(v, 10))
		case string:
			sb.WriteString(v)
		case float64:
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case bool:
			if v {
				sb.WriteByte('T')
			} else {
				sb.WriteByte('F')
			}
		default:
			sb.WriteString(sqldb.Format(v))
		}
	}
	return sb.String()
}

// CostModel prices server-side query execution on the virtual clock. The
// defaults approximate a warm in-memory MySQL instance: a fixed per-query
// overhead plus a per-row scan cost. BatchDispatch is the (small) marginal
// cost of each extra statement in a batch; batched reads otherwise run in
// parallel so a batch costs the max of its members, not the sum.
type CostModel struct {
	PerQuery      time.Duration
	PerRow        time.Duration
	BatchDispatch time.Duration
}

// DefaultCostModel mirrors the calibration described in DESIGN.md.
func DefaultCostModel() CostModel {
	return CostModel{
		PerQuery:      60 * time.Microsecond,
		PerRow:        700 * time.Nanosecond,
		BatchDispatch: 6 * time.Microsecond,
	}
}

// queryCost prices a single executed statement.
func (m CostModel) queryCost(rs *sqldb.ResultSet) time.Duration {
	rows := rs.RowsScanned
	if rows == 0 {
		rows = rs.RowsAffected
	}
	return m.PerQuery + time.Duration(rows)*m.PerRow
}

// ServerStats snapshots server-side accounting.
type ServerStats struct {
	Queries int64
	Batches int64
	// Rows is the total physical rows the executor visited. Batch merging
	// (internal/merge) reduces Queries while leaving Rows essentially
	// unchanged — the row work is the same, the per-statement overheads are
	// what disappear — so the pair makes the optimization legible in the
	// experiment reports.
	Rows int64
	// DBTime is total virtual time charged for query execution.
	DBTime time.Duration
	// QueueWait is total virtual time batches spent queued behind other
	// batches for server capacity (only nonzero under concurrent sessions).
	QueueWait time.Duration
	// WorkerBatches attributes batch placement per DB worker queue
	// (SetWorkers): WorkerBatches[i] is how many batches worker i executed.
	WorkerBatches []int64
	// WorkerBusy is the virtual execution time each worker accumulated —
	// together with WorkerBatches it makes the K-queue occupancy model's
	// load balance legible in the throughput reports.
	WorkerBusy []time.Duration
	// WorkerWall is the real (host) execution time each worker slot spent
	// running snapshot read batches — the wall-clock shadow of the virtual
	// WorkerBusy, and the number the hosttime -workers sweep's parallel
	// efficiency is computed from.
	WorkerWall []time.Duration
	// SnapBatches counts batches that took the parallel snapshot-read path
	// (read-only, outside transactions) rather than the serialized path.
	SnapBatches int64
	// BreakerTrips/BreakerFastFails/BreakerProbes count the per-shard
	// circuit breaker's transitions (breaker.go): trips into the open
	// state, batches rejected locally while open, and half-open probes let
	// through. All zero unless a fault plane with a breaker is installed.
	BreakerTrips     int64
	BreakerFastFails int64
	BreakerProbes    int64
	// RetiredBatches/RetiredBusy/RetiredWall accumulate per-worker
	// attribution folded in by SetWorkers when the pool is resized mid-run,
	// so resizing never silently under-counts totals: total batches placed
	// is sum(WorkerBatches) + RetiredBatches, and likewise for busy/wall.
	RetiredBatches int64
	RetiredBusy    time.Duration
	RetiredWall    time.Duration
}

// Server fronts an engine.DB. It is safe for concurrent use by many
// connections: statement execution serializes on the storage lock, stats
// and the occupancy timeline are mutex-guarded, and each connection owns
// its engine session.
//
// The server no longer advances its clock directly: execution is PRICED
// here (occupancy + cost model) but the time is PAID by the connection
// that waits for the batch (ExecBatch / the dispatch layer), which is
// what lets deferred dispatch overlap execution with app compute. The
// clock parameter is retained as the server's home timeline for future
// server-side background work.
type Server struct {
	db    *engine.DB
	clock netsim.Clock
	cost  CostModel

	// faults is the installed deterministic fault plane (SetFaults); nil —
	// the default — means infallible execution and a zero-cost exec path.
	// Set between replays only: the exec path reads it without locking.
	faults *faults.Plane
	// brk is the per-shard circuit breaker state (nil when the plane's
	// breaker is disabled) and brkCfg its thresholds; see breaker.go.
	// Guarded by mu.
	brk    []breaker
	brkCfg faults.Breaker
	// links tracks every connected link so SetFaults can (un)install the
	// link failure hook retroactively. Guarded by mu.
	links []*netsim.Link

	mu    sync.Mutex
	stats ServerStats
	// met holds the optional live-metrics instruments (SetMetrics): the
	// unified registry's view of the same accounting ServerStats keeps,
	// plus the queue-wait distribution that scalar QueueWait cannot carry.
	met struct {
		batches   *obs.Counter
		stmts     *obs.Counter
		rows      *obs.Counter
		timeNS    *obs.Counter
		wallNS    *obs.Counter
		queueWait *obs.Histogram
		// shardBatches/shardBusyNS are the per-shard occupancy instruments
		// ("db.shard.<i>.batches" / "db.shard.<i>.busy_ns"), registered only
		// for sharded stores: how many batches landed a lane on shard i and
		// the virtual busy time charged there.
		shardBatches []*obs.Counter
		shardBusyNS  []*obs.Counter
		// breaker transition counters ("db.breaker.*"), live shadows of the
		// Breaker* fields in ServerStats. obs counters are nil-safe, so they
		// cost nothing unmetered.
		breakerTrips     *obs.Counter
		breakerFastFails *obs.Counter
		breakerProbes    *obs.Counter
	}
	// lanes holds the busy timeline of each DB worker queue — the
	// multi-queue occupancy model for concurrent sessions (the paper's
	// server runs a pool of DB worker threads; SetWorkers sizes it). A batch
	// arriving at virtual time t is placed on the lane in its group that
	// can start it earliest and starts at the first instant >= t when that
	// lane is idle for the batch's duration; with one session and one
	// worker the lane is always idle at arrival and the model collapses to
	// the original serial accounting.
	//
	// With a sharded store the slice is shard-major: shards × K lanes,
	// lane shard*K+w being shard's worker w. A batch occupies one lane on
	// every shard its statements touch (per the plan router's mask) for an
	// equal share of its cost, and starts at the earliest instant all its
	// chosen lanes are simultaneously free — a scatter waits for its
	// slowest shard. At shards == 1 one lane is chosen and the share is
	// the full cost.
	lanes []laneBusy

	// shards is the occupancy model's shard dimension, mirroring the
	// engine's store (NewServer reads it once; stores never resize).
	shards int

	// slots is the execution-side worker pool matching the occupancy model:
	// a counting semaphore preloaded with one token per worker. A read-only
	// batch takes a token, executes its compiled plans against an MVCC
	// snapshot concurrently with other holders, and returns the token.
	// Writes never take a token — they serialize on the storage lock as
	// before. Guarded by mu for replacement (SetWorkers); holders keep the
	// channel they drew from, so a resize never strands a token.
	slots chan int
}

// busySpan is one half-open busy interval [from, to) on a lane's virtual
// timeline.
type busySpan struct{ from, to time.Duration }

// laneBusy is one DB worker lane's occupancy: disjoint busy spans sorted
// by start. Sessions run concurrently in HOST time, so batches do not
// reach the server in virtual-time order; a single busy horizon would
// make a batch that merely arrives late in host time queue behind a
// session whose virtual clock is far ahead — phantom wait charged for a
// lane that is actually idle at the batch's virtual arrival. Keeping the
// idle gaps lets such a batch backfill: it starts at the earliest instant
// at or after its arrival when the lane is free for its whole duration,
// so QueueWait measures real capacity conflicts only.
type laneBusy struct{ spans []busySpan }

// free reports the earliest start >= from at which the lane is
// continuously idle for dur. A single forward pass works because spans
// are sorted and disjoint: each overlap pushes the candidate window right,
// never left.
func (l *laneBusy) free(from, dur time.Duration) time.Duration {
	for _, sp := range l.spans {
		if sp.to <= from {
			continue
		}
		if sp.from >= from+dur {
			break
		}
		from = sp.to
	}
	return from
}

// insert marks [from, from+dur) busy, coalescing with touching spans.
func (l *laneBusy) insert(from, dur time.Duration) {
	if dur <= 0 {
		return
	}
	to := from + dur
	i := sort.Search(len(l.spans), func(i int) bool { return l.spans[i].from >= from })
	if i > 0 && l.spans[i-1].to >= from {
		i--
		from = l.spans[i].from
		if l.spans[i].to > to {
			to = l.spans[i].to
		}
	}
	j := i
	for j < len(l.spans) && l.spans[j].from <= to {
		if l.spans[j].to > to {
			to = l.spans[j].to
		}
		j++
	}
	if j == i {
		l.spans = append(l.spans, busySpan{})
		copy(l.spans[i+1:], l.spans[i:])
		l.spans[i] = busySpan{from, to}
		return
	}
	l.spans[i] = busySpan{from, to}
	l.spans = append(l.spans[:i+1], l.spans[j:]...)
}

// newSlots builds the k-token worker semaphore.
func newSlots(k int) chan int {
	slots := make(chan int, k)
	for i := 0; i < k; i++ {
		slots <- i
	}
	return slots
}

// NewServer creates a server over db using the given clock and cost model.
// The server starts with one DB worker queue per storage shard; SetWorkers
// resizes the per-shard pool.
func NewServer(db *engine.DB, clock netsim.Clock, cost CostModel) *Server {
	shards := db.Store().NumShards()
	return &Server{db: db, clock: clock, cost: cost, shards: shards,
		lanes: make([]laneBusy, shards), slots: newSlots(shards)}
}

// DB returns the underlying engine (for direct data loading in fixtures).
func (s *Server) DB() *engine.DB { return s.db }

// SetMetrics registers the server's live instruments into reg (nil
// detaches): per-batch counters under "db.*" and the queue-wait
// distribution histogram, so throughput reports and the expvar endpoint
// read the same accounting ServerStats keeps.
func (s *Server) SetMetrics(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.met.batches, s.met.stmts, s.met.rows, s.met.timeNS, s.met.wallNS, s.met.queueWait = nil, nil, nil, nil, nil, nil
		s.met.shardBatches, s.met.shardBusyNS = nil, nil
		s.met.breakerTrips, s.met.breakerFastFails, s.met.breakerProbes = nil, nil, nil
		return
	}
	s.met.breakerTrips = reg.Counter("db.breaker.trips")
	s.met.breakerFastFails = reg.Counter("db.breaker.fast_fails")
	s.met.breakerProbes = reg.Counter("db.breaker.probes")
	s.met.batches = reg.Counter("db.batches")
	s.met.stmts = reg.Counter("db.stmts")
	s.met.rows = reg.Counter("db.rows")
	s.met.timeNS = reg.Counter("db.time_ns")
	s.met.wallNS = reg.Counter("db.exec_wall_ns")
	s.met.queueWait = reg.Histogram("db.queue_wait")
	if s.shards > 1 {
		s.met.shardBatches = make([]*obs.Counter, s.shards)
		s.met.shardBusyNS = make([]*obs.Counter, s.shards)
		for i := 0; i < s.shards; i++ {
			s.met.shardBatches[i] = reg.Counter(fmt.Sprintf("db.shard.%d.batches", i))
			s.met.shardBusyNS[i] = reg.Counter(fmt.Sprintf("db.shard.%d.busy_ns", i))
		}
	}
}

// SetWorkers sizes the DB worker pool to k queues per shard (k < 1
// selects 1), resetting every lane's busy horizon. Per-worker stat
// attribution folds into the Retired* buckets rather than being dropped (a
// shrunk pool must not keep reporting load on workers that no longer
// exist, but a mid-run resize must not silently under-count totals
// either). Call it between replays, not while batches are in flight; a
// batch already holding a worker slot finishes against the channel it drew
// from and its wall time lands in RetiredWall if its slot index no longer
// exists.
func (s *Server) SetWorkers(k int) {
	if k < 1 {
		k = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.stats.WorkerBatches {
		s.stats.RetiredBatches += n
	}
	for _, d := range s.stats.WorkerBusy {
		s.stats.RetiredBusy += d
	}
	for _, d := range s.stats.WorkerWall {
		s.stats.RetiredWall += d
	}
	s.stats.WorkerBatches = nil
	s.stats.WorkerBusy = nil
	s.stats.WorkerWall = nil
	s.lanes = make([]laneBusy, s.shards*k)
	s.slots = newSlots(s.shards * k)
}

// Workers reports the size of the DB worker pool (per shard).
func (s *Server) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lanes) / s.shards
}

// Shards reports the occupancy model's shard count.
func (s *Server) Shards() int { return s.shards }

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.WorkerBatches = append([]int64(nil), s.stats.WorkerBatches...)
	st.WorkerBusy = append([]time.Duration(nil), s.stats.WorkerBusy...)
	st.WorkerWall = append([]time.Duration(nil), s.stats.WorkerWall...)
	return st
}

// ResetStats zeroes the server counters.
func (s *Server) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = ServerStats{}
}

// stmtTrace is one statement's slot in a batch's server-time layout,
// computed only when tracing: off/dur are relative to the batch's start on
// its DB worker (the occupy start shifts them to absolute virtual time).
type stmtTrace struct {
	off  time.Duration
	dur  time.Duration
	path string
	rows int64
}

// execBatch runs the statements for one connection. Writes and transaction
// control execute serially in order; consecutive runs of read statements
// execute "in parallel", costing the maximum member cost plus a dispatch
// cost per statement (the behaviour of the extended driver in Sec. 5).
// With traced set it additionally returns the per-statement layout
// mirroring that cost math: reads start where their parallel group stood,
// writes after the group they closed.
func (s *Server) execBatch(sess *engine.Session, stmts []Stmt, traced bool) ([]*sqldb.ResultSet, time.Duration, []stmtTrace, error) {
	results := make([]*sqldb.ResultSet, 0, len(stmts))
	var total time.Duration
	var parallelMax time.Duration
	var rowsVisited int64
	var layout []stmtTrace
	if traced {
		layout = make([]stmtTrace, 0, len(stmts))
	}

	flushParallel := func() {
		total += parallelMax
		parallelMax = 0
	}

	for _, st := range stmts {
		parsed := st.Parsed
		if parsed == nil {
			var err error
			parsed, err = plan.ParseCached(st.SQL)
			if err != nil {
				return nil, total, nil, fmt.Errorf("driver: %w", err)
			}
		}
		rs, err := sess.ExecPrepared(st.SQL, parsed, st.Args)
		if err != nil {
			return nil, total, nil, err
		}
		cost := s.cost.queryCost(rs)
		rowsVisited += int64(rs.RowsScanned)
		if sqlparse.IsWrite(parsed) {
			// Writes serialize: close the current parallel group first.
			flushParallel()
			if traced {
				layout = append(layout, stmtTrace{
					off: total, dur: cost,
					path: sess.DescribeAccess(st.SQL, parsed),
					rows: int64(rs.RowsScanned),
				})
			}
			total += cost
		} else {
			if traced {
				layout = append(layout, stmtTrace{
					off: total, dur: cost,
					path: sess.DescribeAccess(st.SQL, parsed),
					rows: int64(rs.RowsScanned),
				})
			}
			if cost > parallelMax {
				parallelMax = cost
			}
			total += s.cost.BatchDispatch
		}
		results = append(results, rs)
	}
	flushParallel()

	s.mu.Lock()
	s.stats.Queries += int64(len(stmts))
	s.stats.Batches++
	s.stats.Rows += rowsVisited
	s.stats.DBTime += total
	s.met.batches.Add(1)
	s.met.stmts.Add(int64(len(stmts)))
	s.met.rows.Add(rowsVisited)
	s.met.timeNS.Add(int64(total))
	s.mu.Unlock()
	return results, total, layout, nil
}

// classifyRead decides whether a batch takes the parallel snapshot path:
// every statement must be a SELECT (parsed successfully) and the session
// must not hold an open transaction (a transaction's reads must observe
// its own uncommitted writes, which only the serialized session sees).
// Returns the parsed statements on success; on any parse error it reports
// false and lets the serial path surface the identical error.
func (s *Server) classifyRead(sess *engine.Session, stmts []Stmt) ([]sqlparse.Statement, bool) {
	if sess.InTxn() {
		return nil, false
	}
	parsed := make([]sqlparse.Statement, len(stmts))
	for i, st := range stmts {
		p := st.Parsed
		if p == nil {
			var err error
			p, err = plan.ParseCached(st.SQL)
			if err != nil {
				return nil, false
			}
		}
		if _, ok := p.(*sqlparse.SelectStmt); !ok {
			return nil, false
		}
		parsed[i] = p
	}
	return parsed, true
}

// execReadBatch executes an all-SELECT batch on a DB worker slot against
// one pinned MVCC snapshot, concurrently with other read batches; only the
// slot semaphore and the final stats merge serialize. The virtual-cost
// math is exactly the serialized path's read arm — per-statement dispatch
// cost plus the parallel group's max — so the virtual timeline, and with
// it every golden page, is identical whichever path a batch takes.
func (s *Server) execReadBatch(parsed []sqlparse.Statement, stmts []Stmt, traced bool) ([]*sqldb.ResultSet, time.Duration, []stmtTrace, error) {
	s.mu.Lock()
	slots := s.slots
	s.mu.Unlock()
	slot := <-slots
	//slothvet:allow wallclock(host-side wall stats: measures real multicore speedup, never feeds virtual time)
	wallStart := time.Now()
	ss := s.db.BeginSnapshot()

	results := make([]*sqldb.ResultSet, 0, len(stmts))
	var total time.Duration
	var parallelMax time.Duration
	var rowsVisited int64
	var layout []stmtTrace
	if traced {
		layout = make([]stmtTrace, 0, len(stmts))
	}
	for i, st := range stmts {
		rs, path, err := ss.ExecSelect(st.SQL, parsed[i], st.Args, traced)
		if err != nil {
			ss.Close()
			slots <- slot
			return nil, total, nil, err
		}
		cost := s.cost.queryCost(rs)
		rowsVisited += int64(rs.RowsScanned)
		if traced {
			layout = append(layout, stmtTrace{
				off: total, dur: cost, path: path, rows: int64(rs.RowsScanned),
			})
		}
		if cost > parallelMax {
			parallelMax = cost
		}
		total += s.cost.BatchDispatch
		results = append(results, rs)
	}
	ss.Close()
	//slothvet:allow wallclock(host-side wall stats: measures real multicore speedup, never feeds virtual time)
	wall := time.Since(wallStart)
	slots <- slot
	total += parallelMax

	s.mu.Lock()
	s.stats.Queries += int64(len(stmts))
	s.stats.Batches++
	s.stats.SnapBatches++
	s.stats.Rows += rowsVisited
	s.stats.DBTime += total
	if slot < len(s.lanes) {
		for len(s.stats.WorkerWall) < len(s.lanes) {
			s.stats.WorkerWall = append(s.stats.WorkerWall, 0)
		}
		s.stats.WorkerWall[slot] += wall
	} else {
		// The pool shrank while this batch held an old slot token.
		s.stats.RetiredWall += wall
	}
	s.met.batches.Add(1)
	s.met.stmts.Add(int64(len(stmts)))
	s.met.rows.Add(rowsVisited)
	s.met.timeNS.Add(int64(total))
	s.met.wallNS.Add(int64(wall))
	s.mu.Unlock()
	return results, total, layout, nil
}

// occupy reserves server capacity for a batch arriving at the given virtual
// time. mask is the bitset of shards the batch touches (0 = every shard; on
// an unsharded server there is only the one). Each touched shard is
// charged an equal SHARE of the cost (every shard holds 1/n of the table,
// so a scatter's per-shard work divides by the shards it touches) on the
// lane in its group that can start the batch earliest (ties break to the
// lowest index). The batch starts at the earliest instant at or after its
// arrival when every chosen lane is simultaneously idle for the share —
// idle gaps backfill, so the wait measures real capacity conflicts, and a
// scatter waits for its slowest shard. The batch's own completion is
// still start + the FULL cost: the session's virtual timeline is priced
// exactly as the unsharded server would price it, keeping goldens
// shard-count-independent, and sharding shows up only in the occupancy a
// batch leaves behind — other sessions queue behind the share, not the
// whole cost. The wait is attributed to ServerStats.QueueWait once and
// the placement to WorkerBatches/WorkerBusy per lane. Returns the start
// time, the per-lane share, and the chosen lanes (lanes[0], the lowest
// shard's, is the primary for trace attribution). At shards == 1 this is
// the flat K-queue model with backfill: one lane chosen, share == cost.
func (s *Server) occupy(arrival, cost time.Duration, mask uint64) (time.Duration, time.Duration, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := len(s.lanes) / s.shards
	touched := 0
	for sh := 0; sh < s.shards; sh++ {
		if mask == 0 || mask&(1<<uint(sh)) != 0 {
			touched++
		}
	}
	share := cost
	if touched > 1 {
		share = cost / time.Duration(touched)
	}
	lanes := make([]int, 0, touched)
	for sh := 0; sh < s.shards; sh++ {
		if mask != 0 && mask&(1<<uint(sh)) == 0 {
			continue
		}
		base := sh * k
		w := base
		best := s.lanes[base].free(arrival, share)
		for i := base + 1; i < base+k; i++ {
			if t := s.lanes[i].free(arrival, share); t < best {
				best, w = t, i
			}
		}
		lanes = append(lanes, w)
	}
	// Fixpoint for the common start: raising start past one lane's busy
	// span can land inside another's, but start only moves right, so the
	// loop is bounded by the total span count.
	start := arrival
	for {
		again := false
		for _, w := range lanes {
			if t := s.lanes[w].free(start, share); t > start {
				start, again = t, true
			}
		}
		if !again {
			break
		}
	}
	for len(s.stats.WorkerBatches) < len(s.lanes) {
		s.stats.WorkerBatches = append(s.stats.WorkerBatches, 0)
		s.stats.WorkerBusy = append(s.stats.WorkerBusy, 0)
	}
	for _, w := range lanes {
		s.lanes[w].insert(start, share)
		s.stats.WorkerBatches[w]++
		s.stats.WorkerBusy[w] += share
		if s.met.shardBatches != nil {
			s.met.shardBatches[w/k].Add(1)
			s.met.shardBusyNS[w/k].Add(int64(share))
		}
	}
	s.stats.QueueWait += start - arrival
	s.met.queueWait.Observe(start - arrival)
	return start, share, lanes
}

// shardMask predicts the batch's shard bitset by asking the plan router
// per statement; any unroutable statement (scan, join, DDL, parse issue)
// degrades the whole batch to 0 — every shard. Only meaningful when the
// store is sharded; the mask is advisory (it prices occupancy, never
// routes execution).
func (s *Server) shardMask(stmts []Stmt) uint64 {
	if s.shards <= 1 {
		return 0
	}
	var mask uint64
	s.db.Store().ReadLock()
	defer s.db.Store().ReadUnlock()
	for _, st := range stmts {
		parsed := st.Parsed
		if parsed == nil {
			var err error
			parsed, err = plan.ParseCached(st.SQL)
			if err != nil {
				return 0
			}
		}
		m := s.db.StmtShardMask(st.SQL, parsed, st.Args)
		if m == 0 {
			return 0
		}
		mask |= m
	}
	return mask
}

// laneName is the trace-track label of an occupancy lane. The unsharded
// spelling is kept byte-identical to the pre-sharding exporter so existing
// golden traces and dashboards keep working.
func (s *Server) laneName(lane int) string {
	if s.shards == 1 {
		return fmt.Sprintf("db-worker-%d", lane)
	}
	k := len(s.lanes) / s.shards
	return fmt.Sprintf("db-s%d-worker-%d", lane/k, lane%k)
}

// Conn is a client connection: an engine session reached across a link.
// A Conn must have at most one goroutine executing batches at a time (the
// dispatch layer serializes: either the session thread or a single worker),
// matching JDBC connections; its counters are safe to read concurrently.
type Conn struct {
	srv   *Server
	link  *netsim.Link
	sess  *engine.Session
	clock netsim.Clock

	queriesSent atomic.Int64

	// traceCtx is the span context blocking calls (ExecBatch, Query)
	// parent their execution spans under — the page root while a load is
	// in flight. Owned by the session thread: only the session thread sets
	// it and only the session-thread entry points read it, so the async
	// worker (which always carries an explicit ticket context through
	// ExecBatchCtx) never touches it.
	traceCtx obs.Ctx
}

// Connect opens a connection to the server across link. The link inherits
// the server's fault plane (if one is installed) as its failure hook.
func (s *Server) Connect(link *netsim.Link) *Conn {
	s.mu.Lock()
	s.links = append(s.links, link)
	if s.faults != nil {
		link.SetFault(s.faults)
	}
	s.mu.Unlock()
	return &Conn{srv: s, link: link, sess: s.db.NewSession(), clock: link.Clock()}
}

// Link exposes the connection's network link (for stats and RTT sweeps).
func (c *Conn) Link() *netsim.Link { return c.link }

// Clock exposes the connection's virtual timeline (the link's clock).
func (c *Conn) Clock() netsim.Clock { return c.clock }

// SetTraceCtx installs the span context for this connection's blocking
// executions (session thread only; see the field comment).
func (c *Conn) SetTraceCtx(ctx obs.Ctx) { c.traceCtx = ctx }

// TraceCtx returns the installed span context (session thread only).
func (c *Conn) TraceCtx() obs.Ctx { return c.traceCtx }

// QueriesSent reports how many statements this connection has shipped.
func (c *Conn) QueriesSent() int64 { return c.queriesSent.Load() }

// ResetStats zeroes the connection counter.
func (c *Conn) ResetStats() { c.queriesSent.Store(0) }

// InTxn reports whether the connection has an open transaction.
func (c *Conn) InTxn() bool { return c.sess.InTxn() }

// Query executes one statement in its own round trip — the conventional
// driver behaviour used by the original (non-Sloth) applications.
func (c *Conn) Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error) {
	results, err := c.ExecBatch([]Stmt{{SQL: sql, Args: args}})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ExecBatchAt is the asynchronous batch entry point: it executes all
// statements now (server counters are charged, data effects land) but does
// NOT advance any clock. The batch is modeled as arriving at virtual time
// `arrival`; the returned completion time is when its single round trip
// finishes on the shared timeline — queueing behind earlier batches for
// server capacity, then paying server cost and link latency. Deferred
// dispatch strategies pay (completion - now) only when a session actually
// waits, which is how app-server compute overlaps DB time on the virtual
// clock.
func (c *Conn) ExecBatchAt(arrival time.Duration, stmts []Stmt) ([]*sqldb.ResultSet, time.Duration, error) {
	return c.ExecBatchCtx(obs.Ctx{}, arrival, stmts)
}

// ExecBatchCtx is ExecBatchAt with a span context: when ctx records, the
// batch's round trip becomes an "exec" span under ctx holding the queue
// wait (if the batch queued for a DB worker), the server execution on the
// worker's own track with one child span per statement (laid out by the
// parallel-group cost math, stamped with rows and access path), and the
// link crossing. The virtual timeline is identical with tracing on or
// off — spans observe the simulation, never perturb it.
func (c *Conn) ExecBatchCtx(ctx obs.Ctx, arrival time.Duration, stmts []Stmt) ([]*sqldb.ResultSet, time.Duration, error) {
	results, done, _, err := c.ExecBatchFanout(ctx, arrival, stmts)
	return results, done, err
}

// ExecBatchFanout is ExecBatchCtx reporting additionally how many storage
// shards the batch occupied (its scatter width: 1 on an unsharded server,
// up to the shard count for scans and cross-shard IN lists). The dispatch
// layer threads the number into BatchStats so the querystore's reports can
// show routing effectiveness.
func (c *Conn) ExecBatchFanout(ctx obs.Ctx, arrival time.Duration, stmts []Stmt) ([]*sqldb.ResultSet, time.Duration, int, error) {
	if len(stmts) == 0 {
		return nil, arrival, 0, nil
	}
	reqBytes := 0
	for _, st := range stmts {
		reqBytes += len(st.SQL) + 8
		for _, a := range st.Args {
			reqBytes += sqldb.SizeOf(a)
		}
	}
	traced := ctx.Enabled()
	// The shard mask is computed before execution (routing depends only on
	// statement keys, never on data effects of this batch) so the fault
	// plane can roll per touched shard; it prices occupancy below exactly
	// as the post-exec computation did.
	mask := c.srv.shardMask(stmts)
	if c.srv.faults != nil {
		if failAt, ferr := c.srv.preExecFault(c.link, arrival, reqBytes, mask, stmts); ferr != nil {
			if traced {
				ctx.Instant("fault", "exec", arrival, obs.Arg{K: "err", V: ferr.Error()})
			}
			return nil, failAt, 0, ferr
		}
	}
	var (
		results []*sqldb.ResultSet
		dbCost  time.Duration
		layout  []stmtTrace
		err     error
	)
	// Read-only batches outside transactions execute on a DB worker slot
	// against an MVCC snapshot, in parallel with other read batches; writes
	// and mixed batches take the serialized path. Both paths produce the
	// same virtual cost for the same batch.
	if parsed, ok := c.srv.classifyRead(c.sess, stmts); ok {
		results, dbCost, layout, err = c.srv.execReadBatch(parsed, stmts, traced)
	} else {
		results, dbCost, layout, err = c.srv.execBatch(c.sess, stmts, traced)
	}
	if err != nil {
		if traced {
			ctx.Instant("error", "exec", arrival, obs.Arg{K: "err", V: err.Error()})
		}
		return nil, arrival, 0, err
	}
	if c.srv.faults != nil {
		// Slow-shard spikes stretch the batch's server time (and the
		// occupancy it leaves behind); content is untouched.
		dbCost += c.srv.shardDelay(mask, arrival)
	}
	respBytes := 0
	for _, rs := range results {
		respBytes += rs.WireSize()
	}
	netCost := c.link.Charge(reqBytes, respBytes)
	start, share, lanes := c.srv.occupy(arrival, dbCost, mask)
	c.queriesSent.Add(int64(len(stmts)))
	done := start + dbCost + netCost
	if traced {
		ex := ctx.Child("exec", "batch", arrival, obs.Arg{K: "stmts", V: len(stmts)})
		if start > arrival {
			ex.Child("queue", "db-queue", arrival).End(start)
		}
		// The lane indexes decide only the exporter tracks (their Perfetto
		// lanes): the golden waterfall excludes tracks, so placement changes
		// under different -workers/-shards settings never change the golden
		// tree. The primary (lowest-shard) lane carries the per-statement
		// layout; additional occupied shards get one plain span each.
		dbArgs := []obs.Arg{{K: "stmts", V: len(stmts)}}
		if c.srv.shards > 1 {
			dbArgs = append(dbArgs, obs.Arg{K: "shards", V: len(lanes)})
		}
		db := ex.ChildTrack(c.srv.laneName(lanes[0]), "db", "batch", start, dbArgs...)
		for i := range layout {
			lt := &layout[i]
			db.Child("stmt", stmts[i].SQL, start+lt.off,
				obs.Arg{K: "path", V: lt.path},
				obs.Arg{K: "rows", V: lt.rows}).End(start + lt.off + lt.dur)
		}
		db.End(start + dbCost)
		for _, lane := range lanes[1:] {
			ex.ChildTrack(c.srv.laneName(lane), "db", "shard-exec", start).End(start + share)
		}
		ex.Child("net", "link", start+dbCost,
			obs.Arg{K: "req_b", V: reqBytes},
			obs.Arg{K: "resp_b", V: respBytes}).End(done)
		ex.End(done)
	}
	return results, done, len(lanes), nil
}

// ExecBatch ships all statements to the server in one round trip, blocks
// until completion on the connection's timeline, and returns their result
// sets in order — the Sloth batch driver. Execution spans parent under the
// connection's installed trace context (SetTraceCtx).
func (c *Conn) ExecBatch(stmts []Stmt) ([]*sqldb.ResultSet, error) {
	results, done, err := c.ExecBatchCtx(c.traceCtx, c.clock.Now(), stmts)
	if err != nil {
		return nil, err
	}
	netsim.AdvanceTo(c.clock, done)
	return results, nil
}
