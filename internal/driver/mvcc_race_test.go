package driver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// These tests are the snapshot-isolation stress for `go test -race`:
// concurrent read batches execute on worker slots against MVCC snapshots
// while a writer pipelines multi-row statements through the serialized
// path. Each read batch must observe one consistent epoch — no torn
// multi-row updates, no phantom halves of multi-row inserts.

// TestSnapshotReadsNoTornWrites: a writer repeatedly updates two rows to a
// new common value in one UPDATE statement; reader batches SELECT both
// rows and must always see them equal.
func TestSnapshotReadsNoTornWrites(t *testing.T) {
	_, srv, setup := rig(t, 0)
	srv.SetWorkers(4)
	mustExec(t, setup, "CREATE TABLE pair (id INT PRIMARY KEY, val INT)")
	mustExec(t, setup, "INSERT INTO pair (id, val) VALUES (1, 0), (2, 0)")

	const readers, batches, writes = 4, 200, 200
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		conn := srv.Connect(netsim.NewLink(netsim.NewVirtualClock(), 0))
		for i := 1; i <= writes; i++ {
			if _, err := conn.Query("UPDATE pair SET val = ?", int64(i)); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := srv.Connect(netsim.NewLink(netsim.NewVirtualClock(), 0))
			for i := 0; i < batches; i++ {
				results, err := conn.ExecBatch([]Stmt{
					{SQL: "SELECT val FROM pair WHERE id = 1"},
					{SQL: "SELECT val FROM pair WHERE id = 2"},
				})
				if err != nil {
					errs <- err
					return
				}
				a := results[0].Rows[0][0]
				b := results[1].Rows[0][0]
				if a != b {
					errs <- fmt.Errorf("torn read: id 1 has val %v, id 2 has val %v", a, b)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if st := srv.Stats(); st.SnapBatches == 0 {
		t.Fatal("no batch took the snapshot path")
	}
}

// TestSnapshotReadsNoPhantomInserts: a writer inserts rows two at a time
// in single INSERT statements; reader batches run COUNT(*) twice and must
// see the same, even count both times.
func TestSnapshotReadsNoPhantomInserts(t *testing.T) {
	_, srv, setup := rig(t, 0)
	srv.SetWorkers(4)
	mustExec(t, setup, "CREATE TABLE ev (id INT PRIMARY KEY, x INT)")

	const readers, batches, writes = 4, 150, 150
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		conn := srv.Connect(netsim.NewLink(netsim.NewVirtualClock(), 0))
		for i := 0; i < writes; i++ {
			sql := fmt.Sprintf("INSERT INTO ev (id, x) VALUES (%d, 0), (%d, 0)", 2*i+1, 2*i+2)
			if _, err := conn.Query(sql); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := srv.Connect(netsim.NewLink(netsim.NewVirtualClock(), 0))
			for i := 0; i < batches; i++ {
				results, err := conn.ExecBatch([]Stmt{
					{SQL: "SELECT COUNT(*) FROM ev"},
					{SQL: "SELECT COUNT(*) FROM ev"},
				})
				if err != nil {
					errs <- err
					return
				}
				c1 := results[0].Rows[0][0].(int64)
				c2 := results[1].Rows[0][0].(int64)
				if c1 != c2 {
					errs <- fmt.Errorf("batch saw two epochs: counts %d and %d", c1, c2)
					return
				}
				if c1%2 != 0 {
					errs <- fmt.Errorf("phantom half-insert: count %d is odd", c1)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReadBatchCostMatchesSerialPath: the snapshot path must charge the
// same virtual cost as the serialized path for the same batch — golden
// timelines cannot depend on which path a batch takes.
func TestReadBatchCostMatchesSerialPath(t *testing.T) {
	stmts := []Stmt{
		{SQL: "SELECT v FROM kv WHERE k = 1"},
		{SQL: "SELECT * FROM kv"},
	}

	// Snapshot path: read-only batch outside a transaction.
	_, srvA, connA := rig(t, 0)
	if _, err := connA.ExecBatch(stmts); err != nil {
		t.Fatal(err)
	}
	stA := srvA.Stats()
	if stA.SnapBatches != 1 {
		t.Fatalf("snapshot path not taken: SnapBatches = %d", stA.SnapBatches)
	}

	// Serialized path: same statements inside an explicit transaction.
	_, srvB, connB := rig(t, 0)
	mustExec(t, connB, "BEGIN")
	srvB.ResetStats()
	if _, err := connB.ExecBatch(stmts); err != nil {
		t.Fatal(err)
	}
	stB := srvB.Stats()
	mustExec(t, connB, "COMMIT")
	if stB.SnapBatches != 0 {
		t.Fatalf("transactional batch took the snapshot path")
	}

	if stA.DBTime != stB.DBTime {
		t.Fatalf("virtual cost differs by path: snapshot %v, serial %v", stA.DBTime, stB.DBTime)
	}
	if stA.Rows != stB.Rows {
		t.Fatalf("rows visited differ by path: snapshot %d, serial %d", stA.Rows, stB.Rows)
	}
}

// TestSetWorkersFoldsRetiredStats: resizing the pool mid-run folds the old
// per-worker attribution into the Retired buckets instead of dropping it.
func TestSetWorkersFoldsRetiredStats(t *testing.T) {
	_, srv, conn := rig(t, 0)
	srv.SetWorkers(2)
	for i := 0; i < 4; i++ {
		mustExec(t, conn, "SELECT v FROM kv WHERE k = 1")
	}
	before := srv.Stats()
	var placed int64
	var busy, wall time.Duration
	for _, n := range before.WorkerBatches {
		placed += n
	}
	for _, d := range before.WorkerBusy {
		busy += d
	}
	for _, d := range before.WorkerWall {
		wall += d
	}
	if placed != 4 || busy <= 0 {
		t.Fatalf("precondition: placed %d busy %v", placed, busy)
	}
	if wall <= 0 {
		t.Fatal("precondition: no wall time attributed to worker slots")
	}

	srv.SetWorkers(1)
	after := srv.Stats()
	if len(after.WorkerBatches) > 1 || len(after.WorkerBusy) > 1 {
		t.Fatalf("stale per-worker stats after shrink: %v / %v", after.WorkerBatches, after.WorkerBusy)
	}
	if after.RetiredBatches != placed {
		t.Fatalf("RetiredBatches = %d, want %d", after.RetiredBatches, placed)
	}
	if after.RetiredBusy != busy {
		t.Fatalf("RetiredBusy = %v, want %v", after.RetiredBusy, busy)
	}
	if after.RetiredWall != wall {
		t.Fatalf("RetiredWall = %v, want %v", after.RetiredWall, wall)
	}

	// Totals reconcile across the resize: retired + live covers every batch.
	mustExec(t, conn, "SELECT v FROM kv WHERE k = 2")
	final := srv.Stats()
	var live int64
	for _, n := range final.WorkerBatches {
		live += n
	}
	if got := live + final.RetiredBatches; got != final.Batches {
		t.Fatalf("batch attribution lost on resize: live %d + retired %d != %d", live, final.RetiredBatches, final.Batches)
	}
}
