package driver

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// These tests pin the K-queue occupancy model: batches place on the DB
// worker that frees up first, QueueWait attributes only genuine capacity
// waits, and one worker reproduces the original single-horizon accounting
// exactly.

// occupyProbe issues a batch at a pinned virtual arrival and reports its
// queueing delay (completion minus the unqueued completion).
func occupyProbe(t *testing.T, conn *Conn, arrival time.Duration) time.Duration {
	t.Helper()
	stmts := []Stmt{{SQL: "SELECT v FROM kv WHERE k = 1"}}
	_, done, err := conn.ExecBatchAt(arrival, stmts)
	if err != nil {
		t.Fatal(err)
	}
	return done - arrival
}

// TestWorkersParallelizeOccupancy: two batches arriving together queue
// behind each other on one worker but run side by side on two.
func TestWorkersParallelizeOccupancy(t *testing.T) {
	_, srv, conn := rig(t, 0)
	srv.SetWorkers(1)
	first := occupyProbe(t, conn, 0)
	second := occupyProbe(t, conn, 0)
	if second <= first {
		t.Fatalf("single worker did not queue: first %v, second %v", first, second)
	}
	if srv.Stats().QueueWait <= 0 {
		t.Fatal("single worker recorded no queue wait")
	}

	srv.SetWorkers(2)
	srv.ResetStats()
	a := occupyProbe(t, conn, time.Second)
	b := occupyProbe(t, conn, time.Second)
	if a != b {
		t.Fatalf("two workers still serialized: %v vs %v", a, b)
	}
	if qw := srv.Stats().QueueWait; qw != 0 {
		t.Fatalf("two idle workers charged %v queue wait", qw)
	}
	st := srv.Stats()
	if len(st.WorkerBatches) != 2 || st.WorkerBatches[0] != 1 || st.WorkerBatches[1] != 1 {
		t.Fatalf("placement not attributed per worker: %v", st.WorkerBatches)
	}
	if st.WorkerBusy[0] <= 0 || st.WorkerBusy[1] <= 0 {
		t.Fatalf("worker busy time missing: %v", st.WorkerBusy)
	}

	// Shrinking the pool drops the old attribution: a 1-worker server must
	// not keep reporting load on a worker that no longer exists.
	srv.SetWorkers(1)
	if st := srv.Stats(); len(st.WorkerBatches) > 1 || len(st.WorkerBusy) > 1 {
		t.Fatalf("stale per-worker stats after shrink: %v / %v", st.WorkerBatches, st.WorkerBusy)
	}
}

// TestWorkersPlacementBackfillsIdleGaps: a batch lands on the lane that
// can start it earliest (ties break to the lowest index), and a lane that
// is busy far in the future is still idle NOW — sessions run concurrently
// in host time, so a batch whose virtual arrival precedes an already
// placed reservation backfills the idle gap instead of queueing behind it.
func TestWorkersPlacementBackfillsIdleGaps(t *testing.T) {
	_, srv, conn := rig(t, 0)
	srv.SetWorkers(2)
	// Reserve worker 0 far in the future; the probe's return is the batch
	// cost (rtt 0, no wait), the unqueued baseline for the rest.
	cost := occupyProbe(t, conn, 10*time.Second)
	if cost <= 0 {
		t.Fatal("probe cost zero")
	}
	// An arrival at 0 backfills worker 0's idle gap before that
	// reservation — no wait on top of the cost.
	if d := occupyProbe(t, conn, 0); d != cost {
		t.Fatalf("backfill before a future reservation paid %v, want bare cost %v", d, cost)
	}
	// The next arrival at 0 finds worker 0 busy at 0 and runs on worker 1.
	if d := occupyProbe(t, conn, 0); d != cost {
		t.Fatalf("second idle worker paid %v, want bare cost %v", d, cost)
	}
	st := srv.Stats()
	if st.WorkerBatches[0] != 2 || st.WorkerBatches[1] != 1 {
		t.Fatalf("placement = %v, want [2 1]", st.WorkerBatches)
	}
	if qw := st.QueueWait; qw != 0 {
		t.Fatalf("idle-gap placements charged %v queue wait", qw)
	}
	// A fourth arrival at 0 has no idle lane left at 0: it queues for the
	// first gap — a genuine capacity conflict, the only thing QueueWait
	// should ever measure.
	if d := occupyProbe(t, conn, 0); d <= cost {
		t.Fatal("saturated lanes charged no wait")
	}
	if qw := srv.Stats().QueueWait; qw <= 0 {
		t.Fatal("QueueWait did not record the conflict")
	}
}

// TestSetWorkersOneMatchesSerialAccounting: the K-queue model with K=1 is
// the original busy-horizon model — a serial batch sequence pays zero
// queue wait on its own timeline.
func TestSetWorkersOneMatchesSerialAccounting(t *testing.T) {
	clock, srv, conn := rig(t, time.Millisecond)
	srv.SetWorkers(1)
	for i := 0; i < 5; i++ {
		if _, err := conn.ExecBatch([]Stmt{{SQL: "SELECT v FROM kv WHERE k = 2"}}); err != nil {
			t.Fatal(err)
		}
	}
	if qw := srv.Stats().QueueWait; qw != 0 {
		t.Fatalf("serial single-session run queued %v", qw)
	}
	if clock.Now() <= 5*time.Millisecond {
		t.Fatalf("clock advanced only %v over 5 round trips", clock.Now())
	}
}

// TestWorkersConcurrentRace is the K-worker stress for `go test -race`:
// eight connections hammer a four-worker server concurrently; counters
// must reconcile afterwards.
func TestWorkersConcurrentRace(t *testing.T) {
	_, srv, setup := rig(t, 0)
	_ = setup
	srv.SetWorkers(4)

	const sessions, batches = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := srv.Connect(netsim.NewLink(netsim.NewVirtualClock(), 100*time.Microsecond))
			for j := 0; j < batches; j++ {
				if _, err := conn.ExecBatch([]Stmt{
					{SQL: "SELECT v FROM kv WHERE k = 1"},
					{SQL: "SELECT v FROM kv WHERE k = 2"},
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Batches != sessions*batches {
		t.Fatalf("batches = %d, want %d", st.Batches, sessions*batches)
	}
	if st.Queries != 2*sessions*batches {
		t.Fatalf("queries = %d, want %d", st.Queries, 2*sessions*batches)
	}
	var placed int64
	var busy time.Duration
	for _, n := range st.WorkerBatches {
		placed += n
	}
	for _, d := range st.WorkerBusy {
		busy += d
	}
	if placed != st.Batches {
		t.Fatalf("per-worker placements sum to %d, batches %d", placed, st.Batches)
	}
	if busy != st.DBTime {
		t.Fatalf("per-worker busy sums to %v, DBTime %v", busy, st.DBTime)
	}
}
