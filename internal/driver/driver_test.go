package driver

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sqldb"
	"repro/internal/sqldb/engine"
)

// rig builds a server with a seeded table and one connection at the given
// RTT over a virtual clock.
func rig(t *testing.T, rtt time.Duration) (*netsim.VirtualClock, *Server, *Conn) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	db := engine.New()
	srv := NewServer(db, clock, DefaultCostModel())
	conn := srv.Connect(netsim.NewLink(clock, rtt))
	mustExec(t, conn, "CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
	mustExec(t, conn, "INSERT INTO kv (k, v) VALUES (1, 'one'), (2, 'two'), (3, 'three')")
	conn.Link().ResetStats()
	srv.ResetStats()
	conn.ResetStats()
	return clock, srv, conn
}

func mustExec(t *testing.T, c *Conn, sql string, args ...sqldb.Value) *sqldb.ResultSet {
	t.Helper()
	rs, err := c.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rs
}

func TestQuerySingleRoundTrip(t *testing.T) {
	_, _, conn := rig(t, time.Millisecond)
	rs := mustExec(t, conn, "SELECT v FROM kv WHERE k = 2")
	if rs.Rows[0][0] != "two" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if got := conn.Link().Stats().RoundTrips; got != 1 {
		t.Fatalf("round trips = %d, want 1", got)
	}
}

func TestEachQueryCostsOneRoundTrip(t *testing.T) {
	_, _, conn := rig(t, time.Millisecond)
	for i := 0; i < 5; i++ {
		mustExec(t, conn, "SELECT * FROM kv")
	}
	if got := conn.Link().Stats().RoundTrips; got != 5 {
		t.Fatalf("round trips = %d, want 5", got)
	}
	if conn.QueriesSent() != 5 {
		t.Fatalf("queries sent = %d, want 5", conn.QueriesSent())
	}
}

func TestExecBatchOneRoundTripManyQueries(t *testing.T) {
	_, srv, conn := rig(t, time.Millisecond)
	stmts := []Stmt{
		{SQL: "SELECT v FROM kv WHERE k = 1"},
		{SQL: "SELECT v FROM kv WHERE k = 2"},
		{SQL: "SELECT v FROM kv WHERE k = 3"},
	}
	results, err := conn.ExecBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Rows[0][0] != "one" || results[2].Rows[0][0] != "three" {
		t.Fatalf("batch results wrong: %v", results)
	}
	if got := conn.Link().Stats().RoundTrips; got != 1 {
		t.Fatalf("round trips = %d, want 1", got)
	}
	if got := srv.Stats().Queries; got != 3 {
		t.Fatalf("server queries = %d, want 3", got)
	}
	if got := srv.Stats().Batches; got != 1 {
		t.Fatalf("server batches = %d, want 1", got)
	}
}

func TestBatchedReadsRunInParallel(t *testing.T) {
	// Same three reads issued as three singletons vs one batch: the batch
	// must charge less DB time (max + dispatch, not sum).
	_, srvA, connA := rig(t, 0)
	for k := 1; k <= 3; k++ {
		mustExec(t, connA, "SELECT * FROM kv WHERE k = ?", int64(k))
	}
	serialDB := srvA.Stats().DBTime

	_, srvB, connB := rig(t, 0)
	var stmts []Stmt
	for k := 1; k <= 3; k++ {
		stmts = append(stmts, Stmt{SQL: "SELECT * FROM kv WHERE k = ?", Args: []sqldb.Value{int64(k)}})
	}
	if _, err := connB.ExecBatch(stmts); err != nil {
		t.Fatal(err)
	}
	batchDB := srvB.Stats().DBTime
	if batchDB >= serialDB {
		t.Fatalf("batch DB time %v >= serial %v; reads did not parallelize", batchDB, serialDB)
	}
}

func TestWritesSerializeInBatch(t *testing.T) {
	_, srv, conn := rig(t, 0)
	stmts := []Stmt{
		{SQL: "INSERT INTO kv (k, v) VALUES (10, 'a')"},
		{SQL: "INSERT INTO kv (k, v) VALUES (11, 'b')"},
	}
	if _, err := conn.ExecBatch(stmts); err != nil {
		t.Fatal(err)
	}
	// Two writes must cost at least 2× the per-query cost (serial).
	if srv.Stats().DBTime < 2*DefaultCostModel().PerQuery {
		t.Fatalf("write batch DB time %v too small for serial writes", srv.Stats().DBTime)
	}
	rs := mustExec(t, conn, "SELECT COUNT(*) FROM kv")
	if rs.Rows[0][0] != int64(5) {
		t.Fatalf("count = %v", rs.Rows[0][0])
	}
}

func TestClockAdvancesByRTTAndDBTime(t *testing.T) {
	clock, srv, conn := rig(t, 10*time.Millisecond)
	start := clock.Now()
	mustExec(t, conn, "SELECT * FROM kv")
	total := clock.Now() - start
	net := conn.Link().Stats().NetTime
	db := srv.Stats().DBTime
	if net != 10*time.Millisecond {
		t.Fatalf("net time = %v", net)
	}
	if total != net+db {
		t.Fatalf("clock %v != net %v + db %v", total, net, db)
	}
}

func TestBatchErrorPropagates(t *testing.T) {
	_, _, conn := rig(t, 0)
	_, err := conn.ExecBatch([]Stmt{
		{SQL: "SELECT * FROM kv"},
		{SQL: "SELECT * FROM missing_table"},
	})
	if err == nil {
		t.Fatal("expected error from bad statement in batch")
	}
	_, err = conn.Query("NOT EVEN SQL")
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestEmptyBatchIsFree(t *testing.T) {
	_, _, conn := rig(t, time.Millisecond)
	results, err := conn.ExecBatch(nil)
	if err != nil || results != nil {
		t.Fatalf("empty batch = %v, %v", results, err)
	}
	if conn.Link().Stats().RoundTrips != 0 {
		t.Fatal("empty batch consumed a round trip")
	}
}

func TestTransactionsAcrossConnection(t *testing.T) {
	_, _, conn := rig(t, 0)
	mustExec(t, conn, "BEGIN")
	if !conn.InTxn() {
		t.Fatal("not in txn after BEGIN")
	}
	mustExec(t, conn, "UPDATE kv SET v = 'ONE' WHERE k = 1")
	mustExec(t, conn, "ROLLBACK")
	rs := mustExec(t, conn, "SELECT v FROM kv WHERE k = 1")
	if rs.Rows[0][0] != "one" {
		t.Fatalf("rollback over connection failed: %v", rs.Rows[0][0])
	}
}

func TestTwoConnectionsIsolatedSessions(t *testing.T) {
	clock := netsim.NewVirtualClock()
	db := engine.New()
	srv := NewServer(db, clock, DefaultCostModel())
	c1 := srv.Connect(netsim.NewLink(clock, 0))
	c2 := srv.Connect(netsim.NewLink(clock, 0))
	mustExec(t, c1, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, c1, "BEGIN")
	if c2.InTxn() {
		t.Fatal("txn leaked across connections")
	}
}

func TestCostModelRowsScale(t *testing.T) {
	// A scan over more rows must cost more DB time.
	clock := netsim.NewVirtualClock()
	db := engine.New()
	srv := NewServer(db, clock, DefaultCostModel())
	conn := srv.Connect(netsim.NewLink(clock, 0))
	mustExec(t, conn, "CREATE TABLE big (id INT PRIMARY KEY, v INT)")
	for i := 1; i <= 200; i++ {
		mustExec(t, conn, "INSERT INTO big (id, v) VALUES (?, ?)", int64(i), int64(i))
	}
	srv.ResetStats()
	mustExec(t, conn, "SELECT COUNT(*) FROM big WHERE v > 0")
	scanCost := srv.Stats().DBTime
	srv.ResetStats()
	mustExec(t, conn, "SELECT * FROM big WHERE id = 5")
	pointCost := srv.Stats().DBTime
	if scanCost <= pointCost {
		t.Fatalf("scan %v not more expensive than point lookup %v", scanCost, pointCost)
	}
}
