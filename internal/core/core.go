// Package core assembles Sloth's primary contribution into one runtime
// object: extended lazy evaluation (internal/thunk) wired to a query store
// (internal/querystore) over a batch-capable driver connection
// (internal/driver). A Runtime is what a Sloth-compiled application holds
// per request: it registers queries eagerly, defers their execution, and
// flushes accumulated batches in single round trips when results are
// demanded.
package core

import (
	"time"

	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/orm"
	"repro/internal/querystore"
	"repro/internal/sqldb"
	"repro/internal/sqldb/engine"
	"repro/internal/thunk"
)

// Runtime is a per-request Sloth execution context.
type Runtime struct {
	store *querystore.Store
}

// NewRuntime wraps an established connection.
func NewRuntime(conn *driver.Conn, cfg querystore.Config) *Runtime {
	return &Runtime{store: querystore.New(conn, cfg)}
}

// Store exposes the underlying query store.
func (r *Runtime) Store() *querystore.Store { return r.store }

// Conn exposes the underlying connection.
func (r *Runtime) Conn() *driver.Conn { return r.store.Conn() }

// LazyQuery registers sql with the query store now and returns a thunk for
// its result — the fundamental Sloth operation (paper Sec. 3.3).
func (r *Runtime) LazyQuery(sql string, args ...sqldb.Value) *thunk.Thunk[querystore.Result] {
	return querystore.Lazy(r.store, sql, args...)
}

// Exec runs a statement demanding its result immediately. Writes flush any
// pending batch first, preserving order and transaction boundaries.
func (r *Runtime) Exec(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error) {
	return r.store.Exec(sql, args...)
}

// Flush forces the pending batch out in one round trip.
func (r *Runtime) Flush() error { return r.store.Flush() }

// Session opens an ORM session over this runtime in Sloth mode.
func (r *Runtime) Session() *orm.Session {
	return orm.NewSession(r.store, orm.ModeSloth)
}

// OriginalSession opens an ORM session with conventional eager execution,
// for side-by-side comparisons.
func (r *Runtime) OriginalSession() *orm.Session {
	return orm.NewSession(r.store, orm.ModeOriginal)
}

// Testbed is an all-in-one in-process deployment: database engine, server,
// simulated link, and a connected runtime. It is the quickest way to try
// the library (see examples/quickstart).
type Testbed struct {
	Clock   *netsim.VirtualClock
	DB      *engine.DB
	Server  *driver.Server
	Link    *netsim.Link
	Runtime *Runtime
}

// NewTestbed builds a testbed with the given round-trip latency.
func NewTestbed(rtt time.Duration) *Testbed {
	clock := netsim.NewVirtualClock()
	db := engine.New()
	srv := driver.NewServer(db, clock, driver.DefaultCostModel())
	link := netsim.NewLink(clock, rtt)
	conn := srv.Connect(link)
	return &Testbed{
		Clock:   clock,
		DB:      db,
		Server:  srv,
		Link:    link,
		Runtime: NewRuntime(conn, querystore.Config{}),
	}
}

// MustExec seeds the testbed database directly (no network accounting),
// panicking on error; intended for fixtures.
func (tb *Testbed) MustExec(sql string, args ...sqldb.Value) {
	if _, err := tb.DB.NewSession().Exec(sql, args...); err != nil {
		panic(err)
	}
}

// RoundTrips reports how many round trips the testbed link has carried.
func (tb *Testbed) RoundTrips() int64 { return tb.Link.Stats().RoundTrips }
