package core

import (
	"testing"
	"time"
)

func seeded(t *testing.T) *Testbed {
	t.Helper()
	tb := NewTestbed(time.Millisecond)
	tb.MustExec("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)")
	tb.MustExec("INSERT INTO notes (id, body) VALUES (1, 'one'), (2, 'two'), (3, 'three')")
	return tb
}

func TestLazyQueryBatches(t *testing.T) {
	tb := seeded(t)
	a := tb.Runtime.LazyQuery("SELECT body FROM notes WHERE id = 1")
	b := tb.Runtime.LazyQuery("SELECT body FROM notes WHERE id = 2")
	c := tb.Runtime.LazyQuery("SELECT body FROM notes WHERE id = 3")
	if tb.RoundTrips() != 0 {
		t.Fatal("queries executed before force")
	}
	if got := b.Force(); got.Err != nil || got.RS.Rows[0][0] != "two" {
		t.Fatalf("b = %+v", got)
	}
	if tb.RoundTrips() != 1 {
		t.Fatalf("round trips = %d, want 1 (batch of 3)", tb.RoundTrips())
	}
	if a.Force().RS.Rows[0][0] != "one" || c.Force().RS.Rows[0][0] != "three" {
		t.Fatal("sibling results wrong")
	}
	if tb.RoundTrips() != 1 {
		t.Fatal("siblings caused extra trips")
	}
}

func TestExecWriteFlushes(t *testing.T) {
	tb := seeded(t)
	pending := tb.Runtime.LazyQuery("SELECT body FROM notes WHERE id = 1")
	if _, err := tb.Runtime.Exec("UPDATE notes SET body = 'ONE' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if tb.RoundTrips() != 1 {
		t.Fatalf("round trips = %d, want 1 (write flushed batch)", tb.RoundTrips())
	}
	// The pending read ran BEFORE the write.
	if got := pending.Force(); got.RS.Rows[0][0] != "one" {
		t.Fatalf("pending read saw %v, want pre-write value", got.RS.Rows[0][0])
	}
}

func TestFlushEmptyNoop(t *testing.T) {
	tb := seeded(t)
	if err := tb.Runtime.Flush(); err != nil {
		t.Fatal(err)
	}
	if tb.RoundTrips() != 0 {
		t.Fatal("empty flush consumed a trip")
	}
}

func TestSessions(t *testing.T) {
	tb := seeded(t)
	if !tb.Runtime.Session().Sloth() {
		t.Fatal("Session() not in sloth mode")
	}
	if tb.Runtime.OriginalSession().Sloth() {
		t.Fatal("OriginalSession() in sloth mode")
	}
}
