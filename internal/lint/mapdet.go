package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapdet: Go map iteration order is deliberately randomized, so a range
// over a map that accumulates into a slice, prints, or builds an error
// from the iteration variables produces run-dependent output unless a
// deterministic sort follows — the exact bug class behind the PR 6
// ThunkAllocs bleed and the shared-hub ordering fixes, and the one most
// likely to silently corrupt the 150 byte-identical golden pages. Three
// patterns are flagged:
//
//  1. appending to a slice declared outside the loop, with no later call
//     in the same function that sorts that slice (sort.Slice(ids, ...)
//     after the loop is the sanctioned shape, and is recognized);
//  2. emitting output (fmt print family, Write/WriteString) directly from
//     the loop body;
//  3. returning an error or value constructed from the iteration
//     variables (which row names the "duplicate value" error then depends
//     on map order);
//  4. invoking a func-typed variable (a callback local, parameter, or
//     struct field such as a shard-router hook) with the iteration
//     variables as arguments — the callback observes map elements in
//     random order, and unlike a named function the analyzer cannot see
//     its body to judge order-sensitivity. Scatter-gather code must
//     collect into a slice and sort before invoking the hook.
//
// Order-insensitive bodies — counters, min/max folds, writes into another
// map — are not flagged. Genuinely order-free exceptions take
// //slothvet:allow mapdet(reason).
var MapdetAnalyzer = &Analyzer{
	Name: "mapdet",
	Doc:  "flag map iteration feeding slices, output, or errors without a deterministic sort",
	Run:  runMapdet,
}

var emitNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapdet(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk with enclosing-function context so the sort search is
		// bounded by the function body.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch x := n.(type) {
			case *ast.FuncDecl:
				body = x.Body
			case *ast.FuncLit:
				body = x.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // handled with its own enclosing body
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMapType(t) {
			return true
		}
		checkMapBody(pass, body, rng)
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapBody(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				loopVars[obj] = true // range with = instead of :=
			}
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x != rng {
				// Inner loops over slices/maps inherit the outer map's
				// nondeterminism through their own statements; the outer
				// walk still sees them, so just continue.
				return true
			}
		case *ast.AssignStmt:
			// s = append(s, ...) to a variable declared outside the loop.
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) {
					continue
				}
				target := ast.Unparen(lhs)
				obj := sliceVarObj(pass.Info, target)
				if obj == nil || declaredWithin(obj, rng) {
					continue
				}
				if !sortedAfter(pass, fnBody, rng, obj) {
					pass.Reportf(x.Pos(),
						"append to %s inside map iteration without a deterministic sort afterwards; order is random per run",
						obj.Name())
				}
			}
		case *ast.CallExpr:
			if name, emits := emitCall(pass.Info, x); emits {
				pass.Reportf(x.Pos(),
					"%s emits output directly from map iteration; order is random per run", name)
			} else if name, isHook := funcValueCall(pass.Info, x); isHook && usesAny(pass.Info, x, loopVars) {
				pass.Reportf(x.Pos(),
					"callback %s invoked with map iteration variables; the callback observes elements in random order — collect and sort first", name)
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && usesAny(pass.Info, call, loopVars) {
					pass.Reportf(x.Pos(),
						"return value built from map iteration variables; which element is reported depends on map order")
					break
				}
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sliceVarObj resolves the appended-to expression to a variable object
// (plain identifiers only; field targets are owned by some struct whose
// ordering discipline this analyzer cannot see, so they are skipped).
func sliceVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return rng.Pos() <= obj.Pos() && obj.Pos() < rng.End()
}

// sortedAfter reports whether, lexically after the range loop in the same
// function, some call whose name mentions sort receives obj as an
// argument (sort.Strings(names), sort.Slice(ids, ...), sortStrings(outs),
// slices.Sort(keys)).
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func emitCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !emitNames[sel.Sel.Name] {
		return "", false
	}
	// fmt.Print* and writer methods both emit; sb.WriteString on a local
	// strings.Builder emits too — the builder's contents are output.
	return exprString(sel), true
}

// funcValueCall reports whether the call's callee is a func-typed
// variable — a local, a parameter, or a struct field holding a function
// value — rather than a declared function or method. Declared functions
// (*types.Func) have inspectable bodies and stay the other rules'
// problem; a function VALUE is an opaque hook whose order-sensitivity
// cannot be judged here.
func funcValueCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj := info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok {
		return "", false
	}
	if _, sig := v.Type().Underlying().(*types.Signature); !sig {
		return "", false
	}
	return exprString(ast.Unparen(call.Fun)), true
}

func usesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objs[info.Uses[id]] {
			used = true
		}
		return !used
	})
	return used
}
