package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// snapwrite: a SnapSession executes read-only batches against a pinned
// MVCC epoch, concurrently with the serialized writer — the whole
// multicore design (DESIGN.md §10) rests on nothing in that path mutating
// the store or touching the writer's locks. This analyzer walks the
// static call graph rooted at the snapshot execution entry points
// (engine SnapSession methods, plan's ExecSnap) and proves no storage
// mutation API is reachable. The graph crosses packages through exported
// facts: each package publishes which of its functions can (transitively)
// reach a mutation, in dependency order, so the engine's check sees
// through the plan layer without loading it.
//
// Static means static: calls through stored func values (the compiled
// plan's row closures) are not traced. Those closures are compiled from
// pure expression trees; the analyzer's job is catching the realistic
// regression — someone adding a direct Insert/publish/Lock call under the
// snapshot path.
var SnapwriteAnalyzer = &Analyzer{
	Name: "snapwrite",
	Doc:  "prove no storage mutation API is reachable from snapshot (read-only) execution entry points",
	Run:  runSnapwrite,
}

// snapwriteFact is one package's exported summary: for each function that
// can reach a mutation, the call chain (function IDs, this package's
// function first) to the mutation it reaches.
type snapwriteFact struct {
	// Mutating maps funcID -> short chain description ("(*SelectPlan).ExecSnap -> (*Table).Insert").
	Mutating map[string]string `json:"mutating"`
}

// mutationSeeds are the storage-package functions that ARE the mutation
// and locking surface: reaching any of them from a snapshot path is a
// violation. Unexported implementation helpers (prepend, insertAt,
// restore) are included so transitive closure inside storage works from
// names alone; Lock/Begin are included because taking the writer mutex on
// the snapshot path deadlocks against a blocked writer.
var mutationSeeds = map[string][]string{
	"Table": {"Insert", "Update", "Delete", "AddIndex", "insertAt", "restore", "prepend"},
	"Store": {"CreateTable", "BeginStmt", "EndStmt", "Begin", "Lock"},
	"Txn":   {"Commit", "Rollback"},
}

func isMutationSeed(f *types.Func) bool {
	if f == nil || !hasPathSuffix(pkgPathOf(f), "sqldb/storage") {
		return false
	}
	for recv, names := range mutationSeeds {
		if recvTypeName(f) == recv {
			for _, n := range names {
				if f.Name() == n {
					return true
				}
			}
		}
	}
	return false
}

// isSnapRoot identifies the snapshot execution entry points.
func isSnapRoot(path string, f *types.Func) bool {
	if hasPathSuffix(path, "sqldb/engine") && recvTypeName(f) == "SnapSession" {
		return true
	}
	if hasPathSuffix(path, "sqldb/plan") && f.Name() == "ExecSnap" {
		return true
	}
	return false
}

func runSnapwrite(pass *Pass) error {
	// Local call graph: declared function -> static callees (local funcs,
	// imported funcs, direct seeds). Function literals fold into their
	// enclosing declaration.
	type edge struct {
		callee *types.Func
		pos    token.Pos
	}
	graph := make(map[*types.Func][]edge)
	decls := make(map[*types.Func]*ast.FuncDecl)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls[obj] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pass.Info, call); callee != nil {
					graph[obj] = append(graph[obj], edge{callee: callee, pos: call.Pos()})
				}
				return true
			})
		}
	}

	// Imported facts, lazily fetched per dependency package.
	depFacts := make(map[string]*snapwriteFact)
	factFor := func(path string) *snapwriteFact {
		if f, ok := depFacts[path]; ok {
			return f
		}
		f := &snapwriteFact{}
		if !pass.ImportFact(path, f) || f.Mutating == nil {
			f.Mutating = map[string]string{}
		}
		depFacts[path] = f
		return f
	}

	// mutChain computes, with memoization, whether fn can reach a
	// mutation, returning the chain description.
	state := make(map[*types.Func]int) // 1 visiting, 2 done
	chains := make(map[*types.Func]string)
	var walk func(fn *types.Func) (string, bool)
	walk = func(fn *types.Func) (string, bool) {
		if s := state[fn]; s == 1 {
			return "", false // cycle: resolved by the caller's other edges
		} else if s == 2 {
			c, ok := chains[fn]
			return c, ok
		}
		state[fn] = 1
		var found string
		for _, e := range graph[fn] {
			callee := e.callee
			if isMutationSeed(callee) {
				found = funcID(fn) + " -> " + funcID(callee)
				break
			}
			cpath := pkgPathOf(callee)
			if cpath == pass.Path {
				if chain, bad := walk(callee); bad {
					found = funcID(fn) + " -> " + chain
					break
				}
				continue
			}
			if cpath == "" {
				continue
			}
			// Unknown packages (stdlib, unanalyzed deps) have no fact and
			// resolve to an empty map: their functions are trusted not to
			// mutate this repo's storage.
			if chain, bad := factFor(cpath).Mutating[funcID(callee)]; bad {
				found = funcID(fn) + " -> " + chain
				break
			}
		}
		state[fn] = 2
		if found != "" {
			chains[fn] = found
			return found, true
		}
		return "", false
	}

	// Export this package's fact and check roots.
	fact := &snapwriteFact{Mutating: map[string]string{}}
	ids := make([]*types.Func, 0, len(decls))
	for obj := range decls {
		ids = append(ids, obj)
	}
	sort.Slice(ids, func(i, j int) bool { return funcID(ids[i]) < funcID(ids[j]) })
	for _, obj := range ids {
		if hasPathSuffix(pass.Path, "sqldb/storage") && isMutationSeed(obj) {
			fact.Mutating[funcID(obj)] = funcID(obj)
			continue
		}
		if chain, bad := walk(obj); bad {
			fact.Mutating[funcID(obj)] = chain
			if isSnapRoot(pass.Path, obj) {
				pass.Reportf(decls[obj].Name.Pos(),
					"snapshot entry point %s reaches a storage mutation: %s", funcID(obj), chain)
			}
		}
	}
	pass.ExportFact(fact)
	return nil
}
