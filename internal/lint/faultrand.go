package lint

import (
	"go/ast"
)

// faultrand: every random decision in the reproduction must be replayable
// from a recorded seed — the fault plane (internal/faults) keys all of its
// draws by (seed, site, virtual time), and the workload generators carry
// explicit rand.New(rand.NewSource(seed)) sources. The math/rand package-
// level convenience functions (rand.Intn, rand.Float64, rand.Shuffle, ...)
// draw from the process-global source, whose sequence depends on what else
// ran first — hidden nondeterminism that would silently break same-seed
// reproducibility of goldens, fault schedules, and reports. crypto/rand is
// nondeterministic by design and never acceptable in simulated code. Both
// are banned in test-free shipped code everywhere outside internal/faults;
// constructing an explicitly seeded source (and naming the types) stays
// legal.

// faultrandSeeded is the allowed surface of math/rand and math/rand/v2:
// explicitly seeded constructors and the type names needed to hold them.
var faultrandSeeded = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

// FaultrandAnalyzer forbids unseeded randomness outside the fault plane.
var FaultrandAnalyzer = &Analyzer{
	Name: "faultrand",
	Doc:  "forbid the global math/rand source and crypto/rand outside internal/faults; randomness must flow from an explicit seed",
	Run:  runFaultrand,
}

func runFaultrand(pass *Pass) error {
	// The fault plane is the sanctioned home of randomness: its draws are
	// keyed by (seed, site, virtual time) by construction.
	if hasPathSuffix(pass.Path, "faults") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgIdent(pass.Info, sel.X, "math/rand"), isPkgIdent(pass.Info, sel.X, "math/rand/v2"):
				if faultrandSeeded[sel.Sel.Name] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the unseeded global source; use rand.New(rand.NewSource(seed)) — or the fault plane's keyed PRNG — so the draw replays from a seed",
					sel.Sel.Name)
			case isPkgIdent(pass.Info, sel.X, "crypto/rand"):
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is nondeterministic by design; simulated code must draw from an explicit seed",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
