package lint

import "encoding/json"

// Facts cross two very different process shapes: the in-process drivers
// (loader, linttest) keep them live, while the vettool driver serializes
// each package's fact map to its .vetx output file and reloads dependency
// facts from the files cmd/go hands it. JSON is the single wire format for
// both so an analyzer cannot accidentally depend on in-process-only state.

// decodeFact copies raw into out through JSON — the same round trip the
// vettool driver performs, applied in-process so both drivers agree.
func decodeFact(raw any, out any) bool {
	b, err := json.Marshal(raw)
	if err != nil {
		return false
	}
	return json.Unmarshal(b, out) == nil
}

// EncodeFacts serializes one package's fact map (analyzer name -> fact)
// for a .vetx file. An empty map encodes as "{}" so the output file always
// exists and is valid.
func EncodeFacts(fs *factSet, pkgPath string) ([]byte, error) {
	m := fs.byPkg[pkgPath]
	if m == nil {
		m = map[string]any{}
	}
	return json.Marshal(m)
}

// DecodeFacts loads a dependency package's fact map from .vetx bytes into
// fs under pkgPath. Unknown or empty payloads load as empty maps: a
// dependency analyzed by an older slothvet build must not fail the run.
func DecodeFacts(fs *factSet, pkgPath string, data []byte) error {
	var m map[string]json.RawMessage
	if len(data) > 0 {
		if err := json.Unmarshal(data, &m); err != nil {
			return err
		}
	}
	dst := make(map[string]any, len(m))
	for k, v := range m {
		dst[k] = v
	}
	fs.byPkg[pkgPath] = dst
	return nil
}

// NewFactSet builds an empty fact store whose import path decodes raw
// JSON messages (vetx inputs) as well as live values.
func NewFactSet() *factSet {
	fs := newFactSet()
	fs.decode = func(raw any, out any) bool {
		if msg, ok := raw.(json.RawMessage); ok {
			return json.Unmarshal(msg, out) == nil
		}
		return decodeFact(raw, out)
	}
	return fs
}
