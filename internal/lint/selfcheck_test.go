package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestRepoInvariants runs the full slothvet suite over the module itself:
// the tree must be clean, so a regression against any invariant fails the
// ordinary test run, not just the CI vet step.
func TestRepoInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := lint.LoadTree(root, "repro")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := loaded.Run(lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
