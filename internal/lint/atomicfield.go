package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomicfield: a struct field updated through sync/atomic anywhere must
// be accessed atomically everywhere — one plain read racing an atomic
// increment is undefined behaviour the race detector only catches when a
// test happens to interleave it (the ServerStats/StageStats/obs counter
// shape). The analyzer collects every field that appears as &x.f in a
// sync/atomic call, then flags every other access to the same field that
// is not itself inside an atomic call. Composite-literal keys are ignored
// (initialization before publication is single-goroutine by convention),
// and mutex-guarded mixed designs must either migrate to the typed
// atomic.Int64 style or annotate //slothvet:allow atomicfield(reason).
//
// Fields of exported structs are published as facts so a downstream
// package's plain access to an upstream atomic counter is flagged too.
var AtomicfieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicfield,
}

type atomicfieldFact struct {
	// Fields lists "Type.field" names of exported types whose fields are
	// atomically accessed in the declaring package.
	Fields []string `json:"fields"`
}

var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "Or", "And"}

func isAtomicFunc(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(f.Name(), p) {
			return true
		}
	}
	return false
}

func runAtomicfield(pass *Pass) error {
	// Pass 1: find fields used atomically, and remember which selector
	// nodes are sanctioned (inside &x.f arguments of atomic calls).
	atomicFields := make(map[*types.Var]token.Position)
	sanctioned := make(map[*ast.SelectorExpr]bool)

	fieldOf := func(sel *ast.SelectorExpr) *types.Var {
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		v, _ := s.Obj().(*types.Var)
		return v
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(calleeFunc(pass.Info, call)) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(sel); v != nil {
					sanctioned[sel] = true
					if _, seen := atomicFields[v]; !seen {
						atomicFields[v] = pass.Fset.Position(un.Pos())
					}
				}
			}
			return true
		})
	}

	// Imported facts: atomic fields declared upstream.
	imported := make(map[string]map[string]bool) // pkg path -> "Type.field"
	importedFor := func(path string) map[string]bool {
		if m, ok := imported[path]; ok {
			return m
		}
		m := make(map[string]bool)
		fact := &atomicfieldFact{}
		if pass.ImportFact(path, fact) {
			for _, name := range fact.Fields {
				m[name] = true
			}
		}
		imported[path] = m
		return m
	}

	// Pass 2: flag plain accesses.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			x, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[x] {
				return true
			}
			v := fieldOf(x)
			if v == nil {
				return true
			}
			if pos, hot := atomicFields[v]; hot {
				pass.Reportf(x.Sel.Pos(),
					"non-atomic access to field %s, which is accessed with sync/atomic at %s:%d; mixed access is a data race",
					v.Name(), shortFile(pos.Filename), pos.Line)
				return true
			}
			// Cross-package: field declared upstream with an exported
			// struct type; check the declaring package's fact.
			if v.Pkg() != nil && v.Pkg().Path() != pass.Path {
				if name, ok := selTypeField(pass.Info, x, v); ok && importedFor(v.Pkg().Path())[name] {
					pass.Reportf(x.Sel.Pos(),
						"non-atomic access to field %s.%s, which package %s accesses with sync/atomic; mixed access is a data race",
						v.Pkg().Name(), v.Name(), v.Pkg().Path())
				}
			}
			return true
		})
	}

	// Export fields of named types, "Type.field", for downstream checks.
	fact := &atomicfieldFact{}
	for v := range atomicFields {
		if name, ok := declaredTypeField(pass.Pkg, v); ok {
			fact.Fields = append(fact.Fields, name)
		}
	}
	sort.Strings(fact.Fields)
	pass.ExportFact(fact)
	return nil
}

// selTypeField names the receiver type and field of a selection as
// "Type.field" (pointers stripped), for matching against exported facts.
func selTypeField(info *types.Info, sel *ast.SelectorExpr, v *types.Var) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return n.Obj().Name() + "." + v.Name(), true
}

// declaredTypeField finds the named struct type in pkg declaring field v,
// returning "Type.field".
func declaredTypeField(pkg *types.Package, v *types.Var) (string, bool) {
	if pkg == nil {
		return "", false
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name() + "." + v.Name(), true
			}
		}
	}
	return "", false
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
