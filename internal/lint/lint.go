// Package lint is the reproduction's own static-analysis layer: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface (the container image carries no module proxy, so the x/tools
// framework itself is unavailable) plus the six slothvet analyzers that
// prove the codebase's determinism and concurrency invariants at compile
// time — the paper's method (Sloth is a static analyzer) turned back on
// the code that reproduces it.
//
// The framework is deliberately minimal: an Analyzer runs once per
// package over parsed files and full type information, reports
// position-sorted diagnostics, and may exchange package-level facts with
// the packages it imports (facts flow in dependency order, exactly like
// unitchecker's vetx files). Two drivers exist: the in-process source
// loader (loader.go — fixture tests and `slothvet ./...`) and the
// `go vet -vettool` unitchecker protocol (cmd/slothvet).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //slothvet:allow annotations.
	Name string
	// Doc states the invariant the analyzer proves.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// All returns the full slothvet suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		StmtscopeAnalyzer,
		SnapwriteAnalyzer,
		MapdetAnalyzer,
		AtomicfieldAnalyzer,
		FaultrandAnalyzer,
	}
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test syntax trees.
	Files []*ast.File
	// Path is the canonical import path ("repro/internal/sqldb/storage").
	Path string
	Pkg  *types.Package
	Info *types.Info

	// facts gives read access to the facts every dependency exported and
	// write access to this package's own fact set.
	facts *factSet

	allows allowIndex
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless an allow annotation for this
// analyzer covers the position's line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.allowed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ImportFact copies the fact a dependency package exported under this
// analyzer's name into out (a pointer), reporting whether one existed.
func (p *Pass) ImportFact(pkgPath string, out any) bool {
	return p.facts.importFact(pkgPath, p.Analyzer.Name, out)
}

// ExportFact publishes v as this package's fact for the current analyzer;
// packages that import this one can read it with ImportFact. v must be
// JSON-encodable (facts cross process boundaries under the vettool
// protocol).
func (p *Pass) ExportFact(v any) {
	p.facts.exportFact(p.Path, p.Analyzer.Name, v)
}

// TypeOf is a nil-tolerant p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ---------------------------------------------------------------------------
// Allow annotations.
//
// A finding is suppressed by a comment of the form
//
//	//slothvet:allow <analyzer>(<reason>)
//
// on the flagged line or on its own line immediately above. The reason is
// mandatory: an allow without one is itself a diagnostic, so every
// suppression in the tree documents why the invariant legitimately bends
// there (the acceptance bar for the suite).

var allowRe = regexp.MustCompile(`^//slothvet:allow\s+([a-z]+)\s*\(([^)]*)\)\s*$`)

type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowIndex map[allowKey]bool

// buildAllowIndex scans every comment in the files, recording which
// (file, line, analyzer) triples carry suppressions and reporting
// malformed ones. A suppression on line L covers findings on L and L+1,
// so both same-line and line-above placements work.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (allowIndex, []Diagnostic) {
	idx := make(allowIndex)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var bad []Diagnostic
	meta := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//slothvet:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					meta(pos, "malformed slothvet annotation %q (want //slothvet:allow name(reason))", c.Text)
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if !known[name] {
					meta(pos, "allow names unknown analyzer %q", name)
					continue
				}
				if reason == "" {
					meta(pos, "allow %s() without a reason; every suppression must say why", name)
					continue
				}
				idx[allowKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	return idx, bad
}

func (idx allowIndex) allowed(analyzer string, pos token.Position) bool {
	return idx[allowKey{pos.Filename, pos.Line, analyzer}] ||
		idx[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}

// ---------------------------------------------------------------------------
// Facts.

// factSet holds every package's exported facts, keyed by package path and
// analyzer name. Values are the analyzer's own types in-process; the
// vettool driver round-trips them through JSON (facts.go).
type factSet struct {
	byPkg map[string]map[string]any
	// decode, when set, converts a stored raw fact into out; the in-process
	// driver stores live values and copies them via JSON as well, keeping
	// the two drivers byte-compatible.
	decode func(raw any, out any) bool
}

func newFactSet() *factSet {
	return &factSet{byPkg: make(map[string]map[string]any)}
}

func (fs *factSet) exportFact(pkgPath, analyzer string, v any) {
	m := fs.byPkg[pkgPath]
	if m == nil {
		m = make(map[string]any)
		fs.byPkg[pkgPath] = m
	}
	m[analyzer] = v
}

func (fs *factSet) importFact(pkgPath, analyzer string, out any) bool {
	m := fs.byPkg[pkgPath]
	if m == nil {
		return false
	}
	raw, ok := m[analyzer]
	if !ok {
		return false
	}
	if fs.decode == nil {
		return decodeFact(raw, out)
	}
	return fs.decode(raw, out)
}

// ---------------------------------------------------------------------------
// Running.

// Unit is one package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Path  string
	Pkg   *types.Package
	Info  *types.Info
}

// RunAnalyzers applies every analyzer to the unit, appending diagnostics
// (position-sorted) and exporting facts into fs. Malformed allow
// annotations surface once per package regardless of the analyzer list.
func RunAnalyzers(u *Unit, analyzers []*Analyzer, fs *factSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	allows, bad := buildAllowIndex(u.Fset, u.Files, analyzers)
	diags = append(diags, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Path:     u.Path,
			Pkg:      u.Pkg,
			Info:     u.Info,
			facts:    fs,
			allows:   allows,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
