package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared type-resolution helpers for the analyzers.

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for dynamic calls — calls through
// func-typed values, fields, builtins, or type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvTypeName returns the name of a method's receiver type with pointers
// stripped ("Table" for func (t *Table) ...), or "" for plain functions.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// funcID names a function uniquely within its package: "F" for package
// functions, "(Recv).M" for methods.
func funcID(f *types.Func) string {
	if r := recvTypeName(f); r != "" {
		return "(" + r + ")." + f.Name()
	}
	return f.Name()
}

// pkgPathOf returns the defining package path of a function ("" for
// builtins and universe-scope objects).
func pkgPathOf(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// hasPathSuffix reports whether an import path is the named package or
// ends with "/<suffix>" — the analyzers identify the storage, engine, and
// plan packages this way so fixture trees (paths like "x/sqldb/storage")
// match the real module ("repro/internal/sqldb/storage").
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isPkgIdent reports whether e is a reference to the import of the named
// package (e.g. the `time` in time.Now).
func isPkgIdent(info *types.Info, e ast.Expr, pkgPath string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// exprString renders a short dotted form of a receiver expression for
// comparing Begin/End receivers and for diagnostics ("s.db.store").
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "?"
	}
}
