package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestWallclock(t *testing.T) {
	linttest.Run(t, fixture("wallclock"), lint.WallclockAnalyzer)
}

func TestStmtscope(t *testing.T) {
	linttest.Run(t, fixture("stmtscope"), lint.StmtscopeAnalyzer)
}

func TestSnapwrite(t *testing.T) {
	linttest.Run(t, fixture("snapwrite"), lint.SnapwriteAnalyzer)
}

func TestMapdet(t *testing.T) {
	linttest.Run(t, fixture("mapdet"), lint.MapdetAnalyzer)
}

func TestAtomicfield(t *testing.T) {
	linttest.Run(t, fixture("atomicfield"), lint.AtomicfieldAnalyzer)
}

func TestFaultrand(t *testing.T) {
	linttest.Run(t, fixture("faultrand"), lint.FaultrandAnalyzer)
}
