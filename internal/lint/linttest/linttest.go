// Package linttest runs slothvet analyzers over fixture source trees and
// checks their diagnostics against expectations written in the fixtures
// themselves — the analysistest idiom, reimplemented over the in-process
// loader because x/tools is unavailable offline.
//
// Expectations are comments:
//
//	x := bad() // want "substring of the diagnostic message"
//	// wantprev "substring"   (refers to the line above — used when the
//	//                         flagged line is itself a comment)
//
// Every diagnostic must be claimed by an expectation on its line, every
// expectation must claim at least one diagnostic, and multiple quoted
// strings after one want each stand alone.
package linttest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var (
	wantRe = regexp.MustCompile(`^//\s*want(prev)?\s+(.+)$`)
	strRe  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type expectation struct {
	file   string
	line   int
	substr string
	used   bool
}

// Run loads the fixture tree rooted at root (package import paths are the
// root-relative directory paths), applies the analyzers, and fails the
// test on any mismatch between diagnostics and want comments.
func Run(t *testing.T, root string, analyzers ...*lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatalf("abs %s: %v", root, err)
	}
	loaded, err := lint.LoadTree(abs, "")
	if err != nil {
		t.Fatalf("load %s: %v", root, err)
	}
	diags, err := loaded.Run(analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var wants []*expectation
	for _, u := range loaded.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := loaded.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] == "prev" {
						line--
					}
					for _, q := range strRe.FindAllString(m[2], -1) {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: line, substr: s})
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.used = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}
