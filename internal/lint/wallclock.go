package lint

import (
	"go/ast"
)

// wallclock: the reproduction's entire measured world runs on virtual
// time (netsim clocks); the host's wall clock may appear only at the few
// sanctioned attribution points (driver wall stats, obs host durations,
// the hosttime benchmark, netsim's RealClock implementation), each marked
// //slothvet:allow wallclock(reason). Everywhere else a time.Now or
// time.Sleep is a determinism bug by construction: it couples golden
// output, window close decisions, or stats to host speed — the exact
// class of flake PR 4 removed from the shared hub. Types like
// time.Duration remain fine; only the clock-reading and timer functions
// are banned, in test-free shipped code, across every package.

var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallclockAnalyzer forbids wall-clock reads and timers outside
// annotated host-attribution sites.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep/After/... in virtual-time code; host attribution sites must carry //slothvet:allow wallclock(reason)",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !wallclockBanned[sel.Sel.Name] || !isPkgIdent(pass.Info, sel.X, "time") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the host clock in virtual-time code; use the netsim clock, or annotate //slothvet:allow wallclock(reason) for genuine host attribution",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
