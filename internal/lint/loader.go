package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The in-process loader: enumerate the packages under a directory tree,
// parse their non-test files, topologically sort by in-tree imports, and
// type-check each package against its already-checked dependencies
// (standard-library imports come from the "source" importer, which
// type-checks GOROOT from source and therefore needs no module proxy or
// pre-built export data). This powers both `slothvet ./...` without the
// cmd/go vet harness and the analyzer fixture tests, whose testdata trees
// load with directory-relative import paths.

// Loaded is the result of LoadTree: analysis units in dependency order.
type Loaded struct {
	Fset  *token.FileSet
	Units []*Unit // dependency order: a package follows its imports
}

// LoadTree loads every package under root. modulePath, when non-empty, is
// prefixed to each directory's root-relative path to form its import path
// (the real repo: modulePath "repro"); when empty, import paths are the
// root-relative directory paths themselves (fixture trees). Directories
// named testdata and hidden directories are skipped, as are _test.go
// files — analyzers state invariants about shipped code, and tests
// legitimately use wall clocks and unordered iteration.
func LoadTree(root, modulePath string) (*Loaded, error) {
	fset := token.NewFileSet()
	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}

	type pkgSrc struct {
		path  string
		dir   string
		files []*ast.File
	}
	srcs := make(map[string]*pkgSrc)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := filepath.ToSlash(rel)
		if path == "." {
			path = ""
		}
		if modulePath != "" {
			if path == "" {
				path = modulePath
			} else {
				path = modulePath + "/" + path
			}
		}
		if path == "" {
			continue
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		srcs[path] = &pkgSrc{path: path, dir: dir, files: files}
	}

	// Topological order over in-tree imports.
	order := make([]string, 0, len(srcs))
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		src := srcs[path]
		deps := make(map[string]bool)
		for _, f := range src.files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if _, ours := srcs[p]; ours {
					deps[p] = true
				}
			}
		}
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)
		for _, d := range sorted {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// Type-check in that order.
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package, len(order))
	imp := &treeImporter{std: std, local: checked}
	loaded := &Loaded{Fset: fset}
	for _, path := range order {
		src := srcs[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, fset, src.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
		}
		checked[path] = pkg
		loaded.Units = append(loaded.Units, &Unit{
			Fset:  fset,
			Files: src.files,
			Path:  path,
			Pkg:   pkg,
			Info:  info,
		})
	}
	return loaded, nil
}

// Run applies the analyzers to every loaded unit in dependency order,
// threading facts, and returns all diagnostics sorted by position.
func (l *Loaded) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	fs := NewFactSet()
	var all []Diagnostic
	for _, u := range l.Units {
		diags, err := RunAnalyzers(u, analyzers, fs)
		if err != nil {
			return all, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// treeImporter resolves in-tree packages from the checked set and
// everything else through the source importer.
type treeImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.local[path]; ok {
		return pkg, nil
	}
	return ti.std.Import(path)
}

// goDirs lists directories under root holding at least one non-test .go
// file, skipping hidden and testdata subtrees.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test .go files of one directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
