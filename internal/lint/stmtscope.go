package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// stmtscope: MVCC readers see a multi-row statement atomically only
// because every mutation runs inside a Store.BeginStmt/EndStmt
// publication scope (DESIGN.md §10). A scope opened without a guaranteed
// close leaks publication forever (snapshots starve, GC stalls); a
// mutation outside any scope publishes per-row and readers can observe a
// torn statement. The runtime race hammer samples these bugs; this
// analyzer proves their absence:
//
// Rule 1 (every package): each BeginStmt call must guarantee its
// EndStmt — either `defer store.EndStmt()` as the next statement
// (preferred), or a straight-line EndStmt in the same block with only
// simple statements (no returns or branches) in between.
//
// Rule 2 (engine packages — import path suffix "sqldb/engine"): every
// direct call to a storage mutation API (Table.Insert/Update/Delete,
// Txn.Rollback) must execute inside an open scope: lexically within a
// rule-1-valid scope region, inside a function literal passed to a scope
// wrapper (a local function that opens a scope and invokes a func-typed
// parameter inside it, like Session.execWrite), or inside a function
// whose in-package callers are all themselves scoped. Bulk-load paths
// outside the engine auto-publish per mutation by design and are not
// checked; genuinely exempt engine sites take
// //slothvet:allow stmtscope(reason).
var StmtscopeAnalyzer = &Analyzer{
	Name: "stmtscope",
	Doc:  "prove BeginStmt/EndStmt publication scopes close on all paths and engine mutations run inside one",
	Run:  runStmtscope,
}

// storage API recognition --------------------------------------------------

func isStorageMethod(f *types.Func, recv string, names ...string) bool {
	if f == nil || !hasPathSuffix(pkgPathOf(f), "sqldb/storage") || recvTypeName(f) != recv {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

func isBeginStmt(f *types.Func) bool { return isStorageMethod(f, "Store", "BeginStmt") }
func isEndStmt(f *types.Func) bool   { return isStorageMethod(f, "Store", "EndStmt") }

// isScopedMutation reports whether f is a mutation API that rule 2
// requires inside a publication scope.
func isScopedMutation(f *types.Func) bool {
	return isStorageMethod(f, "Table", "Insert", "Update", "Delete") ||
		isStorageMethod(f, "Txn", "Rollback")
}

// analysis state -----------------------------------------------------------

type scopeRange struct{ from, to token.Pos }

// fnNode is one function declaration or literal with its scope regions.
type fnNode struct {
	node   ast.Node // *ast.FuncDecl or *ast.FuncLit
	body   *ast.BlockStmt
	decl   *ast.FuncDecl // the node itself when a declaration
	obj    *types.Func   // declared object (nil for literals)
	scopes []scopeRange
}

type callSite struct {
	pos    token.Pos
	callee *types.Func
}

func runStmtscope(pass *Pass) error {
	st := &scopeState{pass: pass, byObj: make(map[*types.Func]*fnNode)}
	for _, f := range pass.Files {
		st.collectFuncs(f)
	}
	for _, fn := range st.fns {
		st.findScopes(fn)
	}
	st.findWrappers()
	for _, f := range pass.Files {
		st.collectSites(f)
	}
	// Rule 2 applies only to engine packages.
	if hasPathSuffix(pass.Path, "sqldb/engine") {
		st.checkMutations()
	}
	return nil
}

type scopeState struct {
	pass *Pass
	fns  []*fnNode
	// byObj maps a declared function object to its node.
	byObj map[*types.Func]*fnNode
	// wrappers are local functions that open a scope and call a func
	// parameter inside it.
	wrappers map[*types.Func]bool
	// wrapperLits are function literals passed directly as arguments to a
	// wrapper call: their bodies execute inside the wrapper's scope.
	wrapperLits map[*ast.FuncLit]bool
	// callSites collects in-package call sites per local callee.
	callSites map[*types.Func][]token.Pos
	// mutations are rule-2 obligations.
	mutations []callSite
}

func (st *scopeState) collectFuncs(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body == nil {
				return true
			}
			fn := &fnNode{node: x, body: x.Body, decl: x}
			if obj, ok := st.pass.Info.Defs[x.Name].(*types.Func); ok {
				fn.obj = obj
				st.byObj[obj] = fn
			}
			st.fns = append(st.fns, fn)
		case *ast.FuncLit:
			st.fns = append(st.fns, &fnNode{node: x, body: x.Body})
		}
		return true
	})
}

// exprCall unwraps a statement to the call expression it evaluates.
func exprCall(s ast.Stmt) *ast.CallExpr {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	return call
}

// callRecvString renders the receiver expression of a method call
// ("s.db.store" for s.db.store.BeginStmt()).
func callRecvString(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprString(sel.X)
	}
	return "?"
}

// simpleStmt reports whether s cannot transfer control out of the block:
// the statement forms permitted between a straight-line BeginStmt and its
// EndStmt.
func simpleStmt(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt, *ast.SendStmt:
		return true
	}
	return false
}

// findScopes applies rule 1 to every block of one function, recording the
// valid scope regions and reporting BeginStmt calls whose EndStmt is not
// guaranteed.
func (st *scopeState) findScopes(fn *fnNode) {
	ast.Inspect(fn.body, func(n ast.Node) bool {
		// Skip nested function literals: their blocks belong to their own
		// fnNode.
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != fn.body {
			return fn.node == lit
		}
		// Statement lists live in blocks and in switch/select clauses.
		var list []ast.Stmt
		switch x := n.(type) {
		case *ast.BlockStmt:
			list = x.List
		case *ast.CaseClause:
			list = x.Body
		case *ast.CommClause:
			list = x.Body
		default:
			return true
		}
		for i, s := range list {
			call := exprCall(s)
			if call == nil || !isBeginStmt(calleeFunc(st.pass.Info, call)) {
				continue
			}
			recv := callRecvString(call)
			// Form 1: defer recv.EndStmt() as the next statement; the scope
			// is open until the enclosing function returns.
			if i+1 < len(list) {
				if d, ok := list[i+1].(*ast.DeferStmt); ok {
					if isEndStmt(calleeFunc(st.pass.Info, d.Call)) && callRecvString(d.Call) == recv {
						fn.scopes = append(fn.scopes, scopeRange{from: s.End(), to: fn.body.End()})
						continue
					}
				}
			}
			// Form 2: straight-line EndStmt in the same block with only
			// simple statements in between.
			closed := false
			for j := i + 1; j < len(list); j++ {
				next := list[j]
				if c := exprCall(next); c != nil && isEndStmt(calleeFunc(st.pass.Info, c)) && callRecvString(c) == recv {
					fn.scopes = append(fn.scopes, scopeRange{from: s.End(), to: next.Pos()})
					closed = true
					break
				}
				if !simpleStmt(next) {
					break
				}
			}
			if !closed {
				st.pass.Reportf(s.Pos(),
					"%s.BeginStmt() without an EndStmt guaranteed on all paths; use `defer %s.EndStmt()` immediately after",
					recv, recv)
			}
		}
		return true
	})
}

// findWrappers marks local functions that establish a scope and invoke a
// func-typed parameter inside it (the execWrite shape).
func (st *scopeState) findWrappers() {
	st.wrappers = make(map[*types.Func]bool)
	for _, fn := range st.fns {
		if fn.decl == nil || fn.obj == nil || len(fn.scopes) == 0 {
			continue
		}
		params := make(map[types.Object]bool)
		for _, field := range fn.decl.Type.Params.List {
			if _, ok := field.Type.(*ast.FuncType); !ok {
				continue
			}
			for _, name := range field.Names {
				if obj := st.pass.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
		if len(params) == 0 {
			continue
		}
		ast.Inspect(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || !params[st.pass.Info.Uses[id]] {
				return true
			}
			if fn.inScope(call.Pos()) {
				st.wrappers[fn.obj] = true
			}
			return true
		})
	}
}

func (fn *fnNode) inScope(pos token.Pos) bool {
	for _, sc := range fn.scopes {
		if sc.from <= pos && pos < sc.to {
			return true
		}
	}
	return false
}

// collectSites records mutation obligations, wrapper-argument literals,
// and in-package call sites for the caller-scoped fixpoint.
func (st *scopeState) collectSites(f *ast.File) {
	if st.wrapperLits == nil {
		st.wrapperLits = make(map[*ast.FuncLit]bool)
		st.callSites = make(map[*types.Func][]token.Pos)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(st.pass.Info, call)
		if callee == nil {
			return true
		}
		if st.wrappers[callee] {
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					st.wrapperLits[lit] = true
				}
			}
		}
		if isScopedMutation(callee) {
			st.mutations = append(st.mutations, callSite{pos: call.Pos(), callee: callee})
		}
		if _, local := st.byObj[callee]; local {
			st.callSites[callee] = append(st.callSites[callee], call.Pos())
		}
		return true
	})
}

// enclosing returns the chain of function nodes containing pos, innermost
// last.
func (st *scopeState) enclosing(pos token.Pos) []*fnNode {
	var chain []*fnNode
	for _, fn := range st.fns {
		if fn.node.Pos() <= pos && pos < fn.node.End() {
			chain = append(chain, fn)
		}
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].node.Pos() < chain[j].node.Pos() })
	return chain
}

// posScoped reports whether code at pos runs inside an open publication
// scope, chasing callers when the enclosing function is itself only
// called from scoped contexts. seen breaks recursion cycles.
func (st *scopeState) posScoped(pos token.Pos, seen map[*types.Func]bool) bool {
	chain := st.enclosing(pos)
	if len(chain) == 0 {
		return false
	}
	inner := chain[len(chain)-1]
	if inner.inScope(pos) {
		return true
	}
	if lit, ok := inner.node.(*ast.FuncLit); ok {
		// A literal passed straight to a scope wrapper executes inside the
		// wrapper's scope. Other literals escape analysis: fall through to
		// the enclosing declaration conservatively only when the literal is
		// a wrapper argument.
		return st.wrapperLits[lit]
	}
	// Named function: scoped iff every in-package caller is scoped.
	obj := inner.obj
	if obj == nil || seen[obj] {
		return false
	}
	seen[obj] = true
	sites := st.callSites[obj]
	if len(sites) == 0 {
		return false
	}
	for _, s := range sites {
		if !st.posScoped(s, seen) {
			return false
		}
	}
	return true
}

func (st *scopeState) checkMutations() {
	for _, m := range st.mutations {
		if st.posScoped(m.pos, make(map[*types.Func]bool)) {
			continue
		}
		st.pass.Reportf(m.pos,
			"storage mutation %s outside a BeginStmt/EndStmt publication scope: a concurrent snapshot can observe a torn statement",
			funcID(m.callee))
	}
}
