// Package faults is a faultrand fixture standing in for the real fault
// plane: the one package where randomness is at home, because every draw
// is keyed by (seed, site, virtual time). The analyzer exempts it
// entirely — no findings in this file.
package faults

import "math/rand"

// Roll may use any source it likes; the package owns randomness.
func Roll() float64 {
	return rand.Float64()
}
