// Package app is a faultrand fixture: shipped simulation code where every
// random draw must flow from an explicit seed.
package app

import (
	crand "crypto/rand"
	"math/rand"
)

// Bad draws from the process-global source.
func Bad() int {
	return rand.Intn(10) // want "rand.Intn draws from the unseeded global source"
}

// BadFloat is the same bug through another convenience function.
func BadFloat() float64 {
	return rand.Float64() // want "rand.Float64 draws from the unseeded global source"
}

// BadShuffle mutates order from the global source; references are banned,
// not just calls.
var BadShuffle = rand.Shuffle // want "rand.Shuffle draws from the unseeded global source"

// BadSeed reseeds the global source — still global, still banned.
func BadSeed() {
	rand.Seed(1) // want "rand.Seed draws from the unseeded global source"
}

// BadCrypto reads the OS entropy pool.
func BadCrypto(p []byte) {
	crand.Read(p) // want "crypto/rand.Read is nondeterministic by design"
}

// Good carries an explicitly seeded source: constructors and type names
// are the allowed surface, and draws through the instance are methods on
// *rand.Rand, not package selectors.
type Good struct {
	rng *rand.Rand
}

// NewGood seeds the generator; no findings here.
func NewGood(seed int64) *Good {
	return &Good{rng: rand.New(rand.NewSource(seed))}
}

// Draw uses the seeded instance; method calls are fine.
func (g *Good) Draw() int {
	return g.rng.Intn(10)
}

// Zipfian builds the seeded Zipf helper; still constructor surface.
func Zipfian(seed int64) *rand.Zipf {
	return rand.NewZipf(rand.New(rand.NewSource(seed)), 1.1, 1, 100)
}

// Allowed is a sanctioned exception with a recorded reason.
func Allowed() int {
	//slothvet:allow faultrand(fixture: jitter outside any measured path)
	return rand.Intn(10)
}
