// Package plan is the middle layer: its ExecSnap methods are snapshot
// roots themselves, and its fact carries mutation reachability upward to
// the engine package.
package plan

import "sqldb/storage"

type SelectPlan struct{ tab *storage.Table }

// ExecSnap is a snapshot root that stays read-only: clean.
func (p *SelectPlan) ExecSnap() int {
	return p.scan()
}

func (p *SelectPlan) scan() int {
	n := 0
	for i := 0; i < p.tab.Len(); i++ {
		n += p.tab.Get(i)
	}
	return n
}

type UpsertPlan struct{ tab *storage.Table }

// ExecSnap here reaches a mutation two hops down.
func (p *UpsertPlan) ExecSnap() int { // want "snapshot entry point (UpsertPlan).ExecSnap reaches a storage mutation"
	p.apply()
	return 0
}

func (p *UpsertPlan) apply() {
	p.tab.Insert(1)
}
