// Package storage stubs the mutation surface snapwrite seeds from.
package storage

type Store struct{ depth int }

func (s *Store) BeginStmt() { s.depth++ }
func (s *Store) EndStmt()   { s.depth-- }
func (s *Store) Lock()      {}

type Table struct{ rows []int }

func (t *Table) Insert(v int) { t.rows = append(t.rows, v) }
func (t *Table) Delete(v int) { t.rows = t.rows[1:] }
func (t *Table) Len() int     { return len(t.rows) }
func (t *Table) Get(i int) int {
	return t.rows[i]
}
