// Package engine is the snapwrite fixture root layer: every SnapSession
// method is a snapshot entry point. Cross-package reachability flows in
// through the plan package's exported fact.
package engine

import (
	"sqldb/plan"
	"sqldb/storage"
)

type SnapSession struct {
	tab   *storage.Table
	store *storage.Store
}

// Reads are fine.
func (s *SnapSession) ExecSelect() int {
	return s.sum()
}

func (s *SnapSession) sum() int {
	n := 0
	for i := 0; i < s.tab.Len(); i++ {
		n += s.tab.Get(i)
	}
	return n
}

// Direct mutation from a snapshot root.
func (s *SnapSession) BadWrite(v int) { // want "snapshot entry point (SnapSession).BadWrite reaches a storage mutation"
	s.tab.Insert(v)
}

// Locking is as forbidden as writing: the writer may be blocked on us.
func (s *SnapSession) BadLock() { // want "(SnapSession).BadLock reaches a storage mutation: (SnapSession).BadLock -> (Store).Lock"
	s.store.Lock()
}

// Mutation through an imported package, seen via the plan fact.
func (s *SnapSession) BadViaPlan(p *plan.UpsertPlan) int { // want "(SnapSession).BadViaPlan reaches a storage mutation"
	return p.ExecSnap()
}

// Clean cross-package call: SelectPlan.ExecSnap has no mutating chain.
func (s *SnapSession) GoodViaPlan(p *plan.SelectPlan) int {
	return p.ExecSnap()
}

// Helpers outside the SnapSession receiver are not roots even when they
// mutate: the write path legitimately writes.
type WriteSession struct{ tab *storage.Table }

func (w *WriteSession) Apply(v int) {
	w.tab.Insert(v)
}
