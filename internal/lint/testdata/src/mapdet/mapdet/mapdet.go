// Package mapdet is the map-determinism fixture: ranges over maps that
// feed slices, output, or errors, with and without the sanctioned sort.
package mapdet

import (
	"fmt"
	"sort"
)

// BadAppend accumulates keys and returns them unsorted.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration without a deterministic sort"
	}
	return keys
}

// GoodSorted is the sorted-after-range false-positive check.
func GoodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortInts is a local sort helper; the matcher recognizes it by name.
func sortInts(s []int) {
	sort.Ints(s)
}

// GoodLocalSort sorts through the local helper.
func GoodLocalSort(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sortInts(ids)
	return ids
}

// BadEmit prints straight from the loop.
func BadEmit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "emits output directly from map iteration"
	}
}

// BadReturn builds the returned error from the iteration variables:
// which entry gets reported depends on map order.
func BadReturn(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("negative value %d under %s", v, k) // want "which element is reported depends on map order"
		}
	}
	return nil
}

// GoodFold is order-insensitive: counters and folds are not flagged.
func GoodFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodLoopLocal appends to a slice declared inside the loop body.
func GoodLoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// AllowedEmit documents a deliberately order-free dump.
func AllowedEmit(m map[string]int) {
	for k := range m {
		//slothvet:allow mapdet(fixture: debug dump, consumer is order-free)
		fmt.Println(k)
	}
}
