// Package mapdet is the map-determinism fixture: ranges over maps that
// feed slices, output, or errors, with and without the sanctioned sort.
package mapdet

import (
	"fmt"
	"sort"
)

// BadAppend accumulates keys and returns them unsorted.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration without a deterministic sort"
	}
	return keys
}

// GoodSorted is the sorted-after-range false-positive check.
func GoodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortInts is a local sort helper; the matcher recognizes it by name.
func sortInts(s []int) {
	sort.Ints(s)
}

// GoodLocalSort sorts through the local helper.
func GoodLocalSort(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sortInts(ids)
	return ids
}

// BadEmit prints straight from the loop.
func BadEmit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "emits output directly from map iteration"
	}
}

// BadReturn builds the returned error from the iteration variables:
// which entry gets reported depends on map order.
func BadReturn(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("negative value %d under %s", v, k) // want "which element is reported depends on map order"
		}
	}
	return nil
}

// GoodFold is order-insensitive: counters and folds are not flagged.
func GoodFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodLoopLocal appends to a slice declared inside the loop body.
func GoodLoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// AllowedEmit documents a deliberately order-free dump.
func AllowedEmit(m map[string]int) {
	for k := range m {
		//slothvet:allow mapdet(fixture: debug dump, consumer is order-free)
		fmt.Println(k)
	}
}

// router stands in for a scatter-gather config: ShardOf is a func-typed
// field, an opaque hook the analyzer cannot look inside.
type router struct {
	ShardOf func(key string) int
}

// BadCallbackParam feeds map elements to a func-typed parameter: the
// callback observes them in random per-run order.
func BadCallbackParam(m map[string]int, visit func(string, int)) {
	for k, v := range m {
		visit(k, v) // want "callback visit invoked with map iteration variables"
	}
}

// BadCallbackField routes each pending key through a func-typed struct
// field straight out of the range — the shard-router shape. The sort
// afterwards satisfies the append rule but cannot repair the order the
// hook already observed, so the callback rule still fires.
func BadCallbackField(m map[string]bool, r *router) []int {
	var shards []int
	for k := range m {
		shards = append(shards, r.ShardOf(k)) // want "callback r.ShardOf invoked with map iteration variables"
	}
	sortInts(shards)
	return shards
}

// addToIndex is a declared function: its body is inspectable, so calling
// it with loop variables is the other rules' concern, not the callback
// rule's.
func addToIndex(idx map[string]int, k string, v int) {
	idx[k] = v
}

// GoodDeclaredFunc calls a named function with loop vars; writes into
// another map are order-insensitive and nothing is flagged.
func GoodDeclaredFunc(m map[string]int) map[string]int {
	idx := make(map[string]int)
	for k, v := range m {
		addToIndex(idx, k, v)
	}
	return idx
}

// GoodCollectThenRoute is the sanctioned scatter-gather shape: collect
// the keys, sort them, and only then hand each to the router hook —
// merge order no longer depends on map iteration.
func GoodCollectThenRoute(m map[string]bool, r *router) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	shards := make([]int, 0, len(keys))
	for _, k := range keys {
		shards = append(shards, r.ShardOf(k))
	}
	return shards
}

// GoodCallbackNoLoopVars invokes the hook with loop-independent
// arguments; iteration order cannot leak through.
func GoodCallbackNoLoopVars(m map[string]int, r *router) int {
	n := 0
	for range m {
		n += r.ShardOf("fixed")
	}
	return n
}
