package virt

import "time"

// Malformed and reasonless annotations are findings themselves, and they
// do not suppress the diagnostic they sit next to.

func MissingReason() time.Time {
	//slothvet:allow wallclock()
	// wantprev "without a reason"
	return time.Now() // want "time.Now reads the host clock"
}

func UnknownAnalyzer() {
	//slothvet:allow nosuch(some reason)
	// wantprev "unknown analyzer"
}

func Malformed() {
	//slothvet:allowwallclock
	// wantprev "malformed slothvet annotation"
}
