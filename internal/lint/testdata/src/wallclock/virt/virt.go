// Package virt is a wallclock fixture: virtual-time code that must not
// read the host clock.
package virt

import "time"

// Bad reads the wall clock directly.
func Bad() time.Time {
	return time.Now() // want "time.Now reads the host clock"
}

// BadSleep stalls on host time.
func BadSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
}

// BadTimer builds a host timer; references are banned, not just calls.
var BadTimer = time.After // want "time.After reads the host clock"

// Durations and time arithmetic are not clock reads: no findings here.
func Window(d time.Duration) time.Duration {
	return 2*d + 250*time.Microsecond
}

// Allowed is a sanctioned host-attribution site.
func Allowed() time.Time {
	//slothvet:allow wallclock(fixture: genuine host attribution)
	return time.Now()
}

// AllowedSameLine exercises the same-line annotation placement.
func AllowedSameLine() time.Time {
	return time.Now() //slothvet:allow wallclock(fixture: same-line form)
}
