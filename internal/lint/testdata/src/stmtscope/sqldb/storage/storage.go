// Package storage is a stub of the real storage layer: the analyzers
// recognize it by import-path suffix, so the method set is what matters.
package storage

// Store owns the publication scope.
type Store struct{ depth int }

func (s *Store) BeginStmt() { s.depth++ }
func (s *Store) EndStmt()   { s.depth-- }

// Table carries the mutation API rule 2 guards.
type Table struct{ rows []int }

func (t *Table) Insert(v int) { t.rows = append(t.rows, v) }
func (t *Table) Update(v int) { t.rows[0] = v }
func (t *Table) Delete(v int) { t.rows = t.rows[1:] }
func (t *Table) Len() int     { return len(t.rows) }

// Txn is the transaction handle.
type Txn struct{}

func (tx *Txn) Commit() error   { return nil }
func (tx *Txn) Rollback() error { return nil }
