// Package engine is the stmtscope fixture: rule 1 (scopes close on all
// paths) everywhere, rule 2 (mutations run scoped) because the import
// path ends in sqldb/engine.
package engine

import "sqldb/storage"

type Session struct {
	store *storage.Store
	tab   *storage.Table
	txn   *storage.Txn
}

// execWrite is the wrapper shape: opens a scope, invokes the func-typed
// parameter inside it.
func (s *Session) execWrite(fn func() error) error {
	s.store.BeginStmt()
	defer s.store.EndStmt()
	return fn()
}

// GoodDefer mutates inside a literal passed to the wrapper: scoped.
func (s *Session) GoodDefer(v int) error {
	return s.execWrite(func() error {
		s.tab.Insert(v)
		return nil
	})
}

// GoodStraight uses the straight-line form: Begin, simple statements,
// End — a deliberate false-positive check for both rules.
func (s *Session) GoodStraight(v int) {
	s.store.BeginStmt()
	s.tab.Insert(v)
	s.store.EndStmt()
}

// GoodRollback mirrors the real session's rollback arm.
func (s *Session) GoodRollback() error {
	s.store.BeginStmt()
	err := s.txn.Rollback()
	s.store.EndStmt()
	return err
}

// insertPair is only ever called from scoped contexts, so its mutations
// inherit the callers' scopes.
func (s *Session) insertPair(v int) {
	s.tab.Insert(v)
	s.tab.Insert(v + 1)
}

func (s *Session) GoodViaHelper(v int) error {
	return s.execWrite(func() error {
		s.insertPair(v)
		return nil
	})
}

// BadLeak opens a scope that a branch can exit before EndStmt.
func (s *Session) BadLeak(fail bool) {
	s.store.BeginStmt() // want "without an EndStmt guaranteed on all paths"
	if fail {
		return
	}
	s.store.EndStmt()
}

// BadUnscoped mutates with no scope anywhere in its caller chain.
func (s *Session) BadUnscoped(v int) {
	s.tab.Delete(v) // want "outside a BeginStmt/EndStmt publication scope"
}

// AllowedBulk documents a deliberate exemption.
func (s *Session) AllowedBulk(v int) {
	//slothvet:allow stmtscope(fixture: bulk load publishes per row by design)
	s.tab.Insert(v)
}
