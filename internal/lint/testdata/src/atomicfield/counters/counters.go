// Package counters is the atomicfield fixture: fields touched by
// sync/atomic must be touched that way everywhere.
package counters

import "sync/atomic"

type Stats struct {
	hits   int64
	misses int64
}

// Hit makes hits an atomic field.
func (s *Stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

// ReadGood loads atomically: fine.
func (s *Stats) ReadGood() int64 {
	return atomic.LoadInt64(&s.hits)
}

// ReadBad races with Hit.
func (s *Stats) ReadBad() int64 {
	return s.hits // want "non-atomic access to field hits"
}

// WriteBad is the store side of the same race.
func (s *Stats) WriteBad() {
	s.hits = 0 // want "non-atomic access to field hits"
}

// MissesPlain never uses atomics on misses, so plain access is fine.
func (s *Stats) MissesPlain() int64 {
	s.misses++
	return s.misses
}

// Snapshot documents a sanctioned plain read.
func (s *Stats) Snapshot() int64 {
	//slothvet:allow atomicfield(fixture: read under quiescence in teardown)
	return s.hits
}

// Shared is exported with an exported atomic field, so the fact crosses
// packages.
type Shared struct{ N int64 }

func Bump(sh *Shared) {
	atomic.AddInt64(&sh.N, 1)
}
