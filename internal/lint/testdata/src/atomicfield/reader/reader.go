// Package reader accesses an upstream atomic field non-atomically: the
// violation is caught through the counters package's exported fact, with
// no sync/atomic use in this package at all.
package reader

import "counters"

// PeekBad reads counters.Shared.N without atomics.
func PeekBad(sh *counters.Shared) int64 {
	return sh.N // want "non-atomic access to field counters.N"
}

// Sum only touches local state: fine.
func Sum(vals []int64) int64 {
	var n int64
	for _, v := range vals {
		n += v
	}
	return n
}
