package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Link models the network path between the application server and the
// database server: a fixed round-trip latency plus a per-byte transfer cost.
// Every database interaction in the reproduction flows through a Link, so
// the link's counters are the ground truth for the paper's round-trip
// metrics (Figs. 5b, 6b) and for the network share of the time breakdown
// (Fig. 8).
type Link struct {
	mu sync.Mutex

	clock   Clock
	rtt     time.Duration
	perByte time.Duration
	fault   LinkFault

	roundTrips int64
	bytesSent  int64
	bytesRecv  int64
	timeouts   int64
	netTime    time.Duration
}

// LinkFault is the optional failure hook of a link (SetFault): consulted
// once per round trip with the trip's virtual start time. A non-nil error
// makes the trip fail after `delay` of virtual time instead of completing
// — the deterministic fault plane (internal/faults) implements it with
// seeded, time-keyed timeout rolls.
type LinkFault interface {
	LinkFault(at time.Duration) (delay time.Duration, err error)
}

// LinkStats is a snapshot of a link's accounting counters.
type LinkStats struct {
	RoundTrips int64
	BytesSent  int64
	BytesRecv  int64
	// Timeouts counts round trips that failed at the link (TripFault).
	Timeouts int64
	// NetTime is the total virtual time spent traversing the link,
	// including the time wasted by timed-out trips.
	NetTime time.Duration
}

// NewLink creates a link with the given round-trip latency. The paper's
// configurations are 0.5ms (same data center), 1ms, and 10ms (wide area).
func NewLink(clock Clock, rtt time.Duration) *Link {
	return &Link{clock: clock, rtt: rtt, perByte: 0}
}

// SetPerByte sets the per-byte serialization/transfer cost. Zero (the
// default) models a latency-dominated link, which matches the paper's
// setting where payloads are small relative to latency.
func (l *Link) SetPerByte(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.perByte = d
}

// RTT reports the configured round-trip latency.
func (l *Link) RTT() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rtt
}

// SetRTT reconfigures the round-trip latency (used by the network scaling
// experiment, Fig. 9).
func (l *Link) SetRTT(rtt time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rtt = rtt
}

// Clock returns the clock this link advances on round trips. The dispatch
// layer uses it to pay deferred network time on the session's timeline.
func (l *Link) Clock() Clock {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.clock
}

// SetFault installs (or clears, with nil) the link's failure hook.
func (l *Link) SetFault(f LinkFault) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fault = f
}

// TripFault consults the failure hook for a round trip starting at the
// given virtual time. On a fault it charges the wasted delay to the
// link's net-time accounting, bumps the timeout counter, and returns the
// delay plus the injected error; the caller decides whether to advance
// its timeline and whether to retry. With no hook (or no fault) it
// returns (0, nil).
func (l *Link) TripFault(at time.Duration) (time.Duration, error) {
	l.mu.Lock()
	fault := l.fault
	l.mu.Unlock()
	if fault == nil {
		return 0, nil
	}
	delay, err := fault.LinkFault(at)
	if err == nil {
		return 0, nil
	}
	l.mu.Lock()
	l.timeouts++
	l.netTime += delay
	l.mu.Unlock()
	return delay, err
}

// Charge records one round trip's counters and returns its cost WITHOUT
// advancing the clock. Deferred dispatch strategies (async and shared
// batching) use it so the time of an in-flight round trip is paid on the
// session's timeline only when — and if — the session actually waits.
func (l *Link) Charge(reqBytes, respBytes int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	cost := l.rtt + time.Duration(reqBytes+respBytes)*l.perByte
	l.roundTrips++
	l.bytesSent += int64(reqBytes)
	l.bytesRecv += int64(respBytes)
	l.netTime += cost
	return cost
}

// RoundTrip charges one full round trip carrying reqBytes of request payload
// and respBytes of response payload, advancing the clock accordingly. It
// returns the time charged.
func (l *Link) RoundTrip(reqBytes, respBytes int) time.Duration {
	cost := l.Charge(reqBytes, respBytes)
	l.mu.Lock()
	clock := l.clock
	l.mu.Unlock()
	clock.Advance(cost)
	return cost
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStats{
		RoundTrips: l.roundTrips,
		BytesSent:  l.bytesSent,
		BytesRecv:  l.bytesRecv,
		Timeouts:   l.timeouts,
		NetTime:    l.netTime,
	}
}

// ResetStats zeroes the counters without touching the configuration. The
// benchmark harness resets between page loads.
func (l *Link) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roundTrips = 0
	l.bytesSent = 0
	l.bytesRecv = 0
	l.timeouts = 0
	l.netTime = 0
}

// String summarizes the link configuration and counters.
func (l *Link) String() string {
	s := l.Stats()
	return fmt.Sprintf("link{rtt=%v trips=%d sent=%dB recv=%dB}", l.RTT(), s.RoundTrips, s.BytesSent, s.BytesRecv)
}
