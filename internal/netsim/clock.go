// Package netsim provides a simulated network substrate for the Sloth
// reproduction. The paper's experiments are functions of round-trip counts
// multiplied by link latency plus server-side costs; netsim reproduces that
// arithmetic on a virtual clock so the full benchmark suite runs
// deterministically and in seconds rather than hours.
//
// Two clock implementations are provided: VirtualClock, which advances time
// instantaneously and is used by the experiment harness, and RealClock,
// which sleeps for real wall time and is used by latency-sensitive examples.
package netsim

import (
	"sync"
	"time"
)

// Clock abstracts the passage of time so experiments can run on simulated
// time while examples may run on wall time.
type Clock interface {
	// Now returns the current time as an offset from the clock's epoch.
	Now() time.Duration
	// Advance moves the clock forward by d. On a real clock this sleeps.
	Advance(d time.Duration)
}

// VirtualClock is a thread-safe simulated clock. Advancing it is free; Now
// reports the accumulated virtual time. The zero value is ready to use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtualClock returns a virtual clock starting at zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now reports the accumulated virtual time.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward by d. Negative durations are ignored.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// RealClock advances by sleeping, for demos that want observable latency.
type RealClock struct {
	mu    sync.Mutex
	epoch time.Time
	once  sync.Once
}

// NewRealClock returns a clock backed by the wall clock.
func NewRealClock() *RealClock { return &RealClock{} }

func (c *RealClock) init() {
	//slothvet:allow wallclock(RealClock is the sanctioned wall-clock adapter behind the Clock interface)
	c.once.Do(func() { c.epoch = time.Now() })
}

// Now reports wall time elapsed since the first use of the clock.
func (c *RealClock) Now() time.Duration {
	c.init()
	//slothvet:allow wallclock(RealClock is the sanctioned wall-clock adapter behind the Clock interface)
	return time.Since(c.epoch)
}

// Advance sleeps for d.
func (c *RealClock) Advance(d time.Duration) {
	c.init()
	if d > 0 {
		//slothvet:allow wallclock(RealClock is the sanctioned wall-clock adapter behind the Clock interface)
		time.Sleep(d)
	}
}

// AdvanceTo advances c to the absolute virtual time target, returning the
// amount waited (zero when target is already in the past). It is the
// "block until completion" primitive of deferred dispatch: a session that
// kept computing past a batch's completion time waits nothing.
//
// The read-then-advance pair is not atomic, so a clock must have a single
// advancing goroutine (per-session clocks do).
func AdvanceTo(c Clock, target time.Duration) time.Duration {
	now := c.Now()
	if target <= now {
		return 0
	}
	c.Advance(target - now)
	return target - now
}
