package netsim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestVirtualClockStartsAtZero(t *testing.T) {
	c := NewVirtualClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
}

func TestVirtualClockIgnoresNegative(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(time.Millisecond)
	c.Advance(-time.Second)
	if got := c.Now(); got != time.Millisecond {
		t.Fatalf("Now() = %v, want 1ms", got)
	}
}

func TestVirtualClockConcurrentAdvance(t *testing.T) {
	c := NewVirtualClock()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Microsecond
	if got := c.Now(); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestLinkRoundTripChargesRTT(t *testing.T) {
	c := NewVirtualClock()
	l := NewLink(c, 500*time.Microsecond)
	cost := l.RoundTrip(100, 200)
	if cost != 500*time.Microsecond {
		t.Fatalf("RoundTrip cost = %v, want 500µs", cost)
	}
	if got := c.Now(); got != 500*time.Microsecond {
		t.Fatalf("clock = %v, want 500µs", got)
	}
}

func TestLinkPerByteCost(t *testing.T) {
	c := NewVirtualClock()
	l := NewLink(c, time.Millisecond)
	l.SetPerByte(time.Microsecond)
	cost := l.RoundTrip(10, 20)
	want := time.Millisecond + 30*time.Microsecond
	if cost != want {
		t.Fatalf("RoundTrip cost = %v, want %v", cost, want)
	}
}

func TestLinkStatsAccumulate(t *testing.T) {
	c := NewVirtualClock()
	l := NewLink(c, time.Millisecond)
	l.RoundTrip(10, 20)
	l.RoundTrip(1, 2)
	s := l.Stats()
	if s.RoundTrips != 2 {
		t.Errorf("RoundTrips = %d, want 2", s.RoundTrips)
	}
	if s.BytesSent != 11 {
		t.Errorf("BytesSent = %d, want 11", s.BytesSent)
	}
	if s.BytesRecv != 22 {
		t.Errorf("BytesRecv = %d, want 22", s.BytesRecv)
	}
	if s.NetTime != 2*time.Millisecond {
		t.Errorf("NetTime = %v, want 2ms", s.NetTime)
	}
}

func TestLinkResetStats(t *testing.T) {
	c := NewVirtualClock()
	l := NewLink(c, time.Millisecond)
	l.RoundTrip(10, 20)
	l.ResetStats()
	s := l.Stats()
	if s.RoundTrips != 0 || s.BytesSent != 0 || s.BytesRecv != 0 || s.NetTime != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if l.RTT() != time.Millisecond {
		t.Fatalf("RTT changed by ResetStats: %v", l.RTT())
	}
}

func TestLinkSetRTT(t *testing.T) {
	c := NewVirtualClock()
	l := NewLink(c, time.Millisecond)
	l.SetRTT(10 * time.Millisecond)
	if got := l.RoundTrip(0, 0); got != 10*time.Millisecond {
		t.Fatalf("RoundTrip after SetRTT = %v, want 10ms", got)
	}
}

func TestLinkConcurrentRoundTrips(t *testing.T) {
	c := NewVirtualClock()
	l := NewLink(c, time.Microsecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				l.RoundTrip(1, 1)
			}
		}()
	}
	wg.Wait()
	if s := l.Stats(); s.RoundTrips != 1000 {
		t.Fatalf("RoundTrips = %d, want 1000", s.RoundTrips)
	}
}

func TestRealClockAdvances(t *testing.T) {
	c := NewRealClock()
	before := c.Now()
	c.Advance(2 * time.Millisecond)
	after := c.Now()
	if after-before < 2*time.Millisecond {
		t.Fatalf("RealClock advanced %v, want >= 2ms", after-before)
	}
}

// faultEvery fails every trip whose start time is an exact multiple of its
// period, charging a fixed delay — a minimal LinkFault for hook testing.
type faultEvery struct {
	period time.Duration
	delay  time.Duration
	err    error
}

func (f faultEvery) LinkFault(at time.Duration) (time.Duration, error) {
	if f.period > 0 && at%f.period == 0 {
		return f.delay, f.err
	}
	return 0, nil
}

func TestLinkTripFault(t *testing.T) {
	c := NewVirtualClock()
	l := NewLink(c, time.Millisecond)
	if d, err := l.TripFault(0); d != 0 || err != nil {
		t.Fatalf("no hook: d=%v err=%v", d, err)
	}
	sentinel := fmt.Errorf("injected timeout")
	l.SetFault(faultEvery{period: 2 * time.Millisecond, delay: 3 * time.Millisecond, err: sentinel})
	if d, err := l.TripFault(time.Millisecond); d != 0 || err != nil {
		t.Fatalf("clean trip: d=%v err=%v", d, err)
	}
	d, err := l.TripFault(2 * time.Millisecond)
	if d != 3*time.Millisecond || err != sentinel {
		t.Fatalf("faulted trip: d=%v err=%v", d, err)
	}
	s := l.Stats()
	if s.Timeouts != 1 || s.NetTime != 3*time.Millisecond {
		t.Fatalf("stats after fault: %+v", s)
	}
	l.ResetStats()
	if s := l.Stats(); s.Timeouts != 0 || s.NetTime != 0 {
		t.Fatalf("stats after reset: %+v", s)
	}
	l.SetFault(nil)
	if d, err := l.TripFault(2 * time.Millisecond); d != 0 || err != nil {
		t.Fatalf("hook cleared: d=%v err=%v", d, err)
	}
}
