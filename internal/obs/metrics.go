package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are atomic;
// hot paths (the driver's per-batch accounting) call Add without locks.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram. Buckets are shared
// geometric bounds (LatencyBuckets) so histograms merge and compare
// without coordination; counts are atomic so session goroutines observe
// concurrently. Quantiles interpolate within the containing bucket and
// clamp to the observed min/max, which keeps p50 on a single-valued
// distribution exact.
type Histogram struct {
	bounds []time.Duration // upper bound per bucket; last is +inf sentinel
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// latencyBounds is the shared bucket layout: geometric from 1µs with
// ratio 2^(1/4) (four buckets per doubling), spanning 1µs..~84s in 96
// buckets — fine enough that interpolation error stays under ~19% of the
// value, coarse enough that a histogram is one cache line of counts per
// few buckets.
var latencyBounds = func() []time.Duration {
	const n = 96
	out := make([]time.Duration, n)
	f := float64(time.Microsecond)
	for i := 0; i < n; i++ {
		out[i] = time.Duration(f)
		f *= 1.189207115002721 // 2^(1/4)
	}
	return out
}()

// LatencyBuckets returns the shared histogram bucket upper bounds.
func LatencyBuckets() []time.Duration {
	out := make([]time.Duration, len(latencyBounds))
	copy(out, latencyBounds)
	return out
}

// NewHistogram creates a histogram over the shared latency buckets.
func NewHistogram() *Histogram {
	h := &Histogram{
		bounds: latencyBounds,
		counts: make([]atomic.Int64, len(latencyBounds)+1),
	}
	h.min.Store(int64(^uint64(0) >> 1))
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[idx].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean reports the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the containing bucket, clamped to the observed min and max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			var lo, hi time.Duration
			if i == 0 {
				lo, hi = 0, h.bounds[0]
			} else if i < len(h.bounds) {
				lo, hi = h.bounds[i-1], h.bounds[i]
			} else {
				lo, hi = h.bounds[len(h.bounds)-1], time.Duration(h.max.Load())
			}
			frac := (rank - float64(cum)) / float64(c)
			v := lo + time.Duration(float64(hi-lo)*frac)
			if mn := time.Duration(h.min.Load()); v < mn {
				v = mn
			}
			if mx := time.Duration(h.max.Load()); v > mx {
				v = mx
			}
			return v
		}
		cum += c
	}
	return time.Duration(h.max.Load())
}

// Registry is a named collection of metrics. Get-or-create is idempotent,
// so each layer registers its instruments by name without coordinating
// with the others — the unified replacement for hand-threading deltas
// between *Stats structs.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric's current value keyed by name, with
// histograms expanded to count/sum/mean/p50/p95/p99. Values are
// JSON-encodable (the expvar endpoint publishes this map).
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make(map[string]any)
	for k, c := range counts {
		out[k] = c.Value()
	}
	for k, g := range gauges {
		out[k] = g.Value()
	}
	for k, h := range hists {
		out[k+".count"] = h.Count()
		out[k+".sum_ns"] = int64(h.Sum())
		out[k+".mean_ns"] = int64(h.Mean())
		out[k+".p50_ns"] = int64(h.Quantile(0.50))
		out[k+".p95_ns"] = int64(h.Quantile(0.95))
		out[k+".p99_ns"] = int64(h.Quantile(0.99))
	}
	return out
}

// Format renders the snapshot as sorted "name value" lines.
func (r *Registry) Format() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%-32s %v\n", k, snap[k])
	}
	return sb.String()
}

// current is the process-default registry, published by the -debugaddr
// expvar endpoint. Benchmarks install their per-run registry here so a
// profiling run exposes live metrics over HTTP.
var current atomic.Pointer[Registry]

// SetCurrent installs the process-default registry.
func SetCurrent(r *Registry) { current.Store(r) }

// Current returns the process-default registry (nil if none installed).
func Current() *Registry { return current.Load() }
