// Package obs is the observability spine of the reproduction: a
// deterministic query-lifecycle tracer and a unified metrics registry.
//
// The paper's entire argument is about where time goes inside a page load —
// round trips deferred, batched, and overlapped — so the tracer records
// SPANS ON THE VIRTUAL CLOCK: every span is stamped with the virtual
// start/end times of the timeline it happened on (a session's clock, the
// shared hub's, a DB worker queue's horizon), not with host time. Because
// the simulation is deterministic (PR 4 made even shared dispatch
// bit-for-bit reproducible), a page's span tree is itself deterministic and
// golden-testable: two runs of the same page produce byte-identical
// waterfalls, including timestamps.
//
// Tracing is zero-cost when disabled. The disabled state is a nil *Tracer
// (the default everywhere): the span context Ctx is a value type whose
// methods begin with a nil check and return immediately, so instrumented
// code paths pay one predictable branch. A non-nil tracer can additionally
// be switched off (SetEnabled), which turns every recording call into an
// atomic load — the "compiled in but disabled" configuration the hosttime
// benchmark bounds at <2% overhead.
//
// Span parents are threaded explicitly, never through goroutine-local
// state: webapp.Load opens a page root and hands the Ctx to the query
// store, which parents flush spans under it and stores the flush Ctx in
// the dispatch Ticket, so the async worker or the shared hub — executing
// on another goroutine — still attaches execution spans to the right
// branch of the right page tree.
package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within its tracer. Zero is "no span".
type SpanID int

// Arg is one key/value annotation on a span. Values must be one of
// string, int, int64, float64, bool, or time.Duration so rendering is
// deterministic.
type Arg struct {
	K string
	V any
}

// span is the internal record. Host-clock fields are populated only when
// the tracer's host clock is on, and are excluded from the golden
// waterfall rendering (host time is never deterministic).
type span struct {
	id      SpanID
	parent  SpanID
	cat     string
	name    string
	track   string
	start   time.Duration // virtual
	end     time.Duration // virtual; == start until End
	ended   bool
	hostAt  time.Time
	hostDur time.Duration
	args    []Arg
}

// Span is the exported snapshot of one recorded span (tests, exporters).
type Span struct {
	ID      SpanID
	Parent  SpanID
	Cat     string
	Name    string
	Track   string
	Start   time.Duration
	End     time.Duration
	HostDur time.Duration
	Args    []Arg
}

// Tracer records spans. It is safe for concurrent use: the dispatch
// pipeline records from session goroutines, the async worker, and the
// shared hub at once.
type Tracer struct {
	enabled atomic.Bool
	host    atomic.Bool

	mu    sync.Mutex
	spans []span
}

// NewTracer returns an enabled tracer with the host clock off.
func NewTracer() *Tracer {
	t := &Tracer{}
	t.enabled.Store(true)
	return t
}

// SetEnabled switches recording on or off. A disabled tracer keeps its
// recorded spans; recording calls become an atomic load and return.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether the tracer records.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetHostClock additionally stamps each span with the host-clock duration
// between its Start and End calls. Host durations are advisory (profiling
// runs); they are exported to trace args but never rendered in the golden
// waterfall.
func (t *Tracer) SetHostClock(on bool) { t.host.Store(on) }

// SpanCount reports how many spans have been recorded.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset discards every recorded span.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
}

// Spans snapshots every recorded span in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i := range t.spans {
		s := &t.spans[i]
		out[i] = Span{
			ID: s.id, Parent: s.parent, Cat: s.cat, Name: s.name,
			Track: s.track, Start: s.start, End: s.end,
			HostDur: s.hostDur, Args: s.args,
		}
	}
	return out
}

// Roots lists the ids of parentless spans (page roots, hub windows) in
// recording order.
func (t *Tracer) Roots() []SpanID {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanID
	for i := range t.spans {
		if t.spans[i].parent == 0 {
			out = append(out, t.spans[i].id)
		}
	}
	return out
}

// start appends a span and returns its Ctx. Callers hold no locks.
func (t *Tracer) start(parent SpanID, track, cat, name string, at time.Duration, args []Arg) Ctx {
	var hostAt time.Time
	if t.host.Load() {
		//slothvet:allow wallclock(opt-in host-duration span attribution, off in golden runs)
		hostAt = time.Now()
	}
	t.mu.Lock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, span{
		id: id, parent: parent, cat: cat, name: name, track: track,
		start: at, end: at, hostAt: hostAt, args: args,
	})
	t.mu.Unlock()
	return Ctx{t: t, id: id, track: track}
}

// Root opens a parentless span on the given exporter track (one track per
// session, per DB worker, and for the shared hub).
func (t *Tracer) Root(track, cat, name string, start time.Duration, args ...Arg) Ctx {
	if !t.Enabled() {
		return Ctx{}
	}
	return t.start(0, track, cat, name, start, args)
}

// Ctx is a handle to an open span: the parent under which children record.
// The zero value is the disabled context — every method on it is a no-op —
// so instrumentation threads Ctx values unconditionally and pays only a
// nil check when tracing is off. Ctx is an immutable value and safe to
// hand across goroutines (ticket contexts cross into the async worker and
// the shared hub).
type Ctx struct {
	t     *Tracer
	id    SpanID
	track string
}

// Enabled reports whether this context records spans.
func (c Ctx) Enabled() bool { return c.t != nil && c.t.enabled.Load() }

// Tracer exposes the underlying tracer (nil when disabled).
func (c Ctx) Tracer() *Tracer { return c.t }

// Track reports the exporter track this context's children inherit.
func (c Ctx) Track() string { return c.track }

// Child opens a span under c on the same track.
func (c Ctx) Child(cat, name string, start time.Duration, args ...Arg) Ctx {
	if !c.Enabled() {
		return Ctx{}
	}
	return c.t.start(c.id, c.track, cat, name, start, args)
}

// ChildTrack opens a span under c on a different exporter track (DB worker
// occupancy spans live on per-worker tracks while staying in the page
// tree).
func (c Ctx) ChildTrack(track, cat, name string, start time.Duration, args ...Arg) Ctx {
	if !c.Enabled() {
		return Ctx{}
	}
	return c.t.start(c.id, track, cat, name, start, args)
}

// End closes the span at the given virtual time.
func (c Ctx) End(end time.Duration) { c.EndArgs(end) }

// EndArgs closes the span and appends result annotations (rows scanned,
// statements saved, ...).
func (c Ctx) EndArgs(end time.Duration, args ...Arg) {
	if !c.Enabled() {
		return
	}
	c.t.mu.Lock()
	s := &c.t.spans[c.id-1]
	s.end = end
	s.ended = true
	if !s.hostAt.IsZero() {
		//slothvet:allow wallclock(opt-in host-duration span attribution, off in golden runs)
		s.hostDur = time.Since(s.hostAt)
	}
	if len(args) > 0 {
		s.args = append(s.args, args...)
	}
	c.t.mu.Unlock()
}

// Instant records a zero-width marker span under c (error events, stage
// annotations with no duration of their own).
func (c Ctx) Instant(cat, name string, at time.Duration, args ...Arg) {
	if !c.Enabled() {
		return
	}
	c.t.start(c.id, c.track, cat, name, at, args).End(at)
}

// formatArg renders one annotation value deterministically.
func formatArg(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case time.Duration:
		return x.String()
	default:
		return "?"
	}
}

// argString renders a span's annotations as " {k=v k=v}" in recording
// order (instrumentation sites emit args in a fixed order, so this is
// deterministic).
func argString(args []Arg) string {
	if len(args) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(" {")
	for i, a := range args {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(a.K)
		sb.WriteByte('=')
		sb.WriteString(formatArg(a.V))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Waterfall renders the span tree rooted at id as an indented text
// timeline on the virtual clock. The rendering is the GOLDEN FORM of a
// trace: it includes span names, categories, annotations, and virtual
// start/end timestamps, and deliberately excludes everything
// non-deterministic or placement-dependent — host durations, exporter
// tracks (a DB span lands on a different worker track under -workers 4,
// but its virtual times are identical), and recording order (children sort
// by virtual time, then category, name, and annotations).
func (t *Tracer) Waterfall(root SpanID) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	spans := make([]span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	children := make(map[SpanID][]int)
	byID := make(map[SpanID]int, len(spans))
	for i := range spans {
		byID[spans[i].id] = i
		children[spans[i].parent] = append(children[spans[i].parent], i)
	}
	for _, kids := range children {
		sort.SliceStable(kids, func(a, b int) bool {
			x, y := &spans[kids[a]], &spans[kids[b]]
			if x.start != y.start {
				return x.start < y.start
			}
			if x.end != y.end {
				return x.end < y.end
			}
			if x.cat != y.cat {
				return x.cat < y.cat
			}
			if x.name != y.name {
				return x.name < y.name
			}
			return argString(x.args) < argString(y.args)
		})
	}

	var sb strings.Builder
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := &spans[idx]
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s.cat)
		if s.name != s.cat {
			sb.WriteByte(' ')
			sb.WriteString(s.name)
		}
		sb.WriteString(" [")
		sb.WriteString(s.start.String())
		sb.WriteString(" → ")
		sb.WriteString(s.end.String())
		sb.WriteByte(']')
		sb.WriteString(argString(s.args))
		sb.WriteByte('\n')
		for _, k := range children[s.id] {
			walk(k, depth+1)
		}
	}
	rootIdx, ok := byID[root]
	if !ok {
		return ""
	}
	walk(rootIdx, 0)
	return sb.String()
}
