package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	ctx := tr.Root("s", "page", "p", 0)
	if ctx.Enabled() {
		t.Fatal("nil-tracer ctx reports enabled")
	}
	child := ctx.Child("flush", "flush", time.Millisecond)
	child.End(2 * time.Millisecond)
	ctx.Instant("err", "boom", time.Millisecond)
	if tr.SpanCount() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
	if got := tr.Waterfall(1); got != "" {
		t.Fatalf("nil tracer waterfall = %q", got)
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(false)
	ctx := tr.Root("s", "page", "p", 0)
	ctx.Child("flush", "flush", 0).End(time.Millisecond)
	if tr.SpanCount() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.SpanCount())
	}
	if ctx.Enabled() {
		t.Fatal("ctx from disabled tracer enabled")
	}
}

func TestSpanTreeAndWaterfall(t *testing.T) {
	tr := NewTracer()
	page := tr.Root("session", "page", "view issue.jsp", 0, Arg{"mode", "sloth"})
	fl := page.Child("flush", "flush", 2*time.Millisecond, Arg{"trigger", "force"})
	db := fl.ChildTrack("db-worker-0", "db", "batch", 3*time.Millisecond, Arg{"stmts", 4})
	db.End(4 * time.Millisecond)
	fl.EndArgs(5*time.Millisecond, Arg{"stmts", 4})
	page.End(10 * time.Millisecond)

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want one", roots)
	}
	got := tr.Waterfall(roots[0])
	want := strings.Join([]string{
		"page view issue.jsp [0s → 10ms] {mode=sloth}",
		"  flush [2ms → 5ms] {trigger=force stmts=4}",
		"    db batch [3ms → 4ms] {stmts=4}",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("waterfall:\n%s\nwant:\n%s", got, want)
	}
}

// The golden rendering sorts children by virtual time, so recording order
// (which races under the async worker) must not affect the waterfall.
func TestWaterfallOrderIndependent(t *testing.T) {
	build := func(order []int) string {
		tr := NewTracer()
		page := tr.Root("s", "page", "p", 0)
		for _, i := range order {
			page.Child("flush", "flush", time.Duration(i)*time.Millisecond,
				Arg{"n", i}).End(time.Duration(i+1) * time.Millisecond)
		}
		page.End(20 * time.Millisecond)
		return tr.Waterfall(tr.Roots()[0])
	}
	a := build([]int{1, 2, 3})
	b := build([]int{3, 1, 2})
	if a != b {
		t.Fatalf("waterfall depends on recording order:\n%s\nvs\n%s", a, b)
	}
}

// Worker placement may differ across -workers settings; only the track
// changes, and tracks are excluded from the golden waterfall.
func TestWaterfallExcludesTrack(t *testing.T) {
	build := func(track string) string {
		tr := NewTracer()
		page := tr.Root("s", "page", "p", 0)
		page.ChildTrack(track, "db", "batch", time.Millisecond).End(2 * time.Millisecond)
		page.End(3 * time.Millisecond)
		return tr.Waterfall(tr.Roots()[0])
	}
	if build("db-worker-0") != build("db-worker-3") {
		t.Fatal("waterfall leaks worker track")
	}
}

func TestTracerConcurrentRecording(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := tr.Root("s", "page", "p", 0)
			for i := 0; i < 100; i++ {
				root.Child("flush", "flush", time.Duration(i)).End(time.Duration(i + 1))
			}
			root.End(time.Second)
		}(g)
	}
	wg.Wait()
	if n := tr.SpanCount(); n != 8*101 {
		t.Fatalf("spans = %d, want %d", n, 8*101)
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	tr := NewTracer()
	page := tr.Root("session-0", "page", "p", 0)
	page.ChildTrack("db-worker-0", "db", "batch", time.Millisecond).End(2 * time.Millisecond)
	page.End(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, buf.String())
	}
	if n != 2 {
		t.Fatalf("complete events = %d, want 2", n)
	}
	for _, want := range []string{`"thread_name"`, `"session-0"`, `"db-worker-0"`, `"ph":"X"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("trace JSON missing %s:\n%s", want, buf.String())
		}
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"X","ts":0,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"ph":"Q","name":"x","ts":0,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"ph":"M","name":"thread_name","pid":1,"tid":1}]}`,
	}
	for _, c := range cases {
		if _, err := ValidateChromeTrace([]byte(c)); err == nil {
			t.Fatalf("accepted invalid trace %s", c)
		}
	}
}
