package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// Format" with an outer object), which Perfetto and chrome://tracing load
// directly. Complete spans use ph "X" with microsecond ts/dur; track
// naming uses ph "M" thread_name metadata records.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every recorded span as Chrome trace-event JSON.
// Tracks (sessions, DB workers, the shared hub) become "threads" of one
// process: each distinct track gets a tid in sorted-name order plus a
// thread_name metadata event, so Perfetto shows one lane per session and
// per DB worker. Timestamps are virtual microseconds; the optional
// host-clock duration rides along as an arg.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	spans := t.Spans()

	trackNames := map[string]bool{}
	for i := range spans {
		trackNames[spans[i].Track] = true
	}
	sorted := make([]string, 0, len(trackNames))
	for name := range trackNames {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	tids := make(map[string]int, len(sorted))
	for i, name := range sorted {
		tids[name] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+len(sorted))
	for _, name := range sorted {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[name],
			Args: map[string]any{"name": name},
		})
	}
	for i := range spans {
		s := &spans[i]
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts:  float64(s.Start) / float64(time.Microsecond),
			Dur: float64(s.End-s.Start) / float64(time.Microsecond),
			Pid: 1, Tid: tids[s.Track],
		}
		if len(s.Args) > 0 || s.HostDur > 0 {
			ev.Args = make(map[string]any, len(s.Args)+1)
			for _, a := range s.Args {
				ev.Args[a.K] = formatArg(a.V)
			}
			if s.HostDur > 0 {
				ev.Args["host_dur"] = s.HostDur.String()
			}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks that data parses as trace-event JSON and that
// every event satisfies the schema subset this package emits: ph "X" with
// a name and non-negative ts/dur, or ph "M" thread_name metadata with an
// args.name. It returns the number of complete ("X") events. The CI trace
// smoke step runs the emitted file through this before uploading it.
func ValidateChromeTrace(data []byte) (int, error) {
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return 0, fmt.Errorf("obs: trace has no traceEvents")
	}
	complete := 0
	for i, ev := range tr.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			name, _ := ev["name"].(string)
			if name == "" {
				return 0, fmt.Errorf("obs: event %d: X event without name", i)
			}
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return 0, fmt.Errorf("obs: event %d: X event with bad ts", i)
			}
			if dur, present := ev["dur"]; present {
				d, ok := dur.(float64)
				if !ok || d < 0 {
					return 0, fmt.Errorf("obs: event %d: X event with bad dur", i)
				}
			}
			if _, ok := ev["pid"].(float64); !ok {
				return 0, fmt.Errorf("obs: event %d: missing pid", i)
			}
			if _, ok := ev["tid"].(float64); !ok {
				return 0, fmt.Errorf("obs: event %d: missing tid", i)
			}
			complete++
		case "M":
			name, _ := ev["name"].(string)
			if name != "thread_name" {
				return 0, fmt.Errorf("obs: event %d: unexpected metadata %q", i, name)
			}
			args, _ := ev["args"].(map[string]any)
			if tn, _ := args["name"].(string); tn == "" {
				return 0, fmt.Errorf("obs: event %d: thread_name without args.name", i)
			}
		default:
			return 0, fmt.Errorf("obs: event %d: unexpected ph %q", i, ph)
		}
	}
	if complete == 0 {
		return 0, fmt.Errorf("obs: trace has no complete (X) events")
	}
	return complete, nil
}
