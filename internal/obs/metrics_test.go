package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter")
	}
	var g *Gauge
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("nil gauge")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("x") != nil || r.Gauge("x") != nil {
		t.Fatal("nil registry returned instruments")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	// With one distinct value, clamping to min/max makes every quantile exact.
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != 10*time.Millisecond {
			t.Fatalf("q%.2f = %v, want 10ms", q, got)
		}
	}
	if h.Mean() != 10*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := NewHistogram()
	// 1ms..100ms uniform.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 40*time.Millisecond || p50 > 62*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 85*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want ≈99ms", p99)
	}
	if q1 := h.Quantile(1.0); q1 != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want exactly max", q1)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("db.batches") != r.Counter("db.batches") {
		t.Fatal("counter not idempotent")
	}
	if r.Histogram("page.latency") != r.Histogram("page.latency") {
		t.Fatal("histogram not idempotent")
	}
	r.Counter("db.batches").Add(3)
	r.Gauge("queue.depth").Set(7)
	r.Histogram("page.latency").Observe(5 * time.Millisecond)

	snap := r.Snapshot()
	if snap["db.batches"] != int64(3) {
		t.Fatalf("snapshot counter = %v", snap["db.batches"])
	}
	if snap["queue.depth"] != int64(7) {
		t.Fatalf("snapshot gauge = %v", snap["queue.depth"])
	}
	if snap["page.latency.count"] != int64(1) {
		t.Fatalf("snapshot hist count = %v", snap["page.latency.count"])
	}
	if snap["page.latency.p50_ns"] != int64(5*time.Millisecond) {
		t.Fatalf("snapshot p50 = %v", snap["page.latency.p50_ns"])
	}

	txt := r.Format()
	for _, want := range []string{"db.batches", "queue.depth", "page.latency.p99_ns"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Format missing %s:\n%s", want, txt)
		}
	}
}

func TestCurrentRegistry(t *testing.T) {
	old := Current()
	defer SetCurrent(old)
	r := NewRegistry()
	SetCurrent(r)
	if Current() != r {
		t.Fatal("Current did not return installed registry")
	}
}
