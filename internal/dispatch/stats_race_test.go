package dispatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/sqldb"
)

// This file is the concurrency audit for the stats surfaces, written after
// reviewing every counter the three dispatchers expose:
//
//   - All Dispatcher.Stats() counters live in the mutex-guarded statsBox
//     (snapshot copies under box.mu).
//   - Hub window state and Hub.Stats() are guarded by the same box.mu.
//   - Server.Stats() copies under Server.mu, including the per-worker
//     slices (deep-copied, so a caller cannot race the next batch's
//     append).
//   - Conn.QueriesSent is an atomic counter.
//
// The audit found no unguarded read, but only -race keeps it that way: this
// test hammers every Stats surface concurrently with Submit/Wait — reads
// and writes, so the shared strategy's write-barrier path is exercised too —
// across all three strategies at once against one server.

// TestStatsRace runs n sessions per strategy submitting read and write
// batches while reader goroutines spin on every stats surface.
func TestStatsRace(t *testing.T) {
	srv, connect := rig(t)
	const sessions = 3
	const rounds = 40

	var stop atomic.Bool
	var readers sync.WaitGroup
	spin := func(read func()) {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				read()
			}
		}()
	}

	hubConn, _ := connect(100 * time.Microsecond)
	hub := NewHub(hubConn, 0)
	spin(func() { srv.Stats() })
	spin(func() { srv.Workers() })
	spin(func() { hub.Stats() })

	var workers sync.WaitGroup
	var firstErr atomic.Value
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, err)
	}
	for s := 0; s < sessions; s++ {
		for _, kind := range []Kind{KindSync, KindAsync, KindShared} {
			conn, _ := connect(100 * time.Microsecond)
			var d Dispatcher
			switch kind {
			case KindSync:
				d = NewSync(conn)
			case KindAsync:
				d = NewAsync(conn)
			default:
				d = NewShared(hub, conn)
			}
			spin(func() { d.Stats() })
			spin(func() { conn.QueriesSent() })
			workers.Add(1)
			go func(s int, kind Kind, d Dispatcher) {
				defer workers.Done()
				defer d.Close()
				for r := 0; r < rounds; r++ {
					var stmts []driver.Stmt
					if r%4 == 3 {
						// A write batch: the shared strategy's per-session
						// barrier path, the others' serial write path.
						stmts = []driver.Stmt{{
							SQL:  "UPDATE items SET qty = ? WHERE id = ?",
							Args: []sqldb.Value{int64(r), int64(1 + r%3)},
						}}
					} else {
						stmts = []driver.Stmt{sel(int64(1 + r%3)), sel(int64(1 + (r+1)%3))}
					}
					if _, _, err := d.Wait(d.Submit(stmts)); err != nil {
						fail(fmt.Errorf("%v session %d round %d: %w", kind, s, r, err))
						return
					}
				}
			}(s, kind, d)
		}
	}

	// Demand-close the hub while submitters run: Stats readers plus window
	// closes from a non-session goroutine is the worst interleaving the
	// throughput experiment produces.
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; i < rounds; i++ {
			hub.CloseWindow()
		}
	}()

	workers.Wait()
	hub.CloseWindow() // release any parked read batch from a failed round
	stop.Store(true)
	readers.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Queries; got == 0 {
		t.Fatal("no statements reached the server")
	}
}
