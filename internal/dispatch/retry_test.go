package dispatch

import (
	"errors"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/merge"
	"repro/internal/sqldb"
)

// retryPolicy is the test recovery policy: enough attempts to walk out of
// the rig's fault windows with a short, capped backoff.
func retryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 8, Backoff: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond}
}

// TestBackoffCapped pins the capped-exponential schedule.
func TestBackoffCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, Backoff: 100 * time.Microsecond, MaxBackoff: 500 * time.Microsecond}
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond}
	for i, w := range want {
		if got := p.backoffAfter(i + 1); got != w {
			t.Fatalf("backoffAfter(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (RetryPolicy{MaxAttempts: 3}).backoffAfter(1); got != DefaultRetryBackoff {
		t.Fatalf("default backoff = %v", got)
	}
}

// TestSyncRetryRecovers: a batch arriving inside an outage window retries on
// backed-off virtual time until the window clears, succeeds, and counts in
// Retries — never Errors.
func TestSyncRetryRecovers(t *testing.T) {
	srv, connect := rig(t)
	srv.SetFaults(faults.NewPlane(faults.Config{
		Outages: []faults.Outage{{Shard: 0, From: 0, To: 3 * time.Millisecond}},
	}))
	conn, clock := connect(time.Millisecond)
	d := NewSync(conn)
	d.SetRetry(retryPolicy())
	rs := mustWait(t, d, d.Submit([]driver.Stmt{sel(1)}))
	if rs[0].Rows[0][1] != "apple" {
		t.Fatalf("rows = %v", rs[0].Rows)
	}
	st := d.Stats()
	if st.Retries == 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want retries > 0 and no errors", st)
	}
	if clock.Now() < 3*time.Millisecond {
		t.Fatalf("clock = %v, want walked past the outage window", clock.Now())
	}
}

// TestRetryExhaustionIsTerminal: with too few attempts to clear the window
// the batch fails with a typed, Is-able transient error.
func TestRetryExhaustionIsTerminal(t *testing.T) {
	srv, connect := rig(t)
	srv.SetFaults(faults.NewPlane(faults.Config{
		Outages: []faults.Outage{{Shard: 0, From: 0, To: 50 * time.Millisecond}},
	}))
	conn, _ := connect(time.Millisecond)
	d := NewSync(conn)
	d.SetRetry(RetryPolicy{MaxAttempts: 2, Backoff: 100 * time.Microsecond})
	_, _, err := d.Wait(d.Submit([]driver.Stmt{sel(1)}))
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	st := d.Stats()
	if st.Errors != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 error, 1 retry", st)
	}
}

// TestRetryDeadline: a retry that would start past the per-batch deadline is
// not attempted.
func TestRetryDeadline(t *testing.T) {
	srv, connect := rig(t)
	srv.SetFaults(faults.NewPlane(faults.Config{
		Outages: []faults.Outage{{Shard: 0, From: 0, To: 50 * time.Millisecond}},
	}))
	conn, _ := connect(time.Millisecond)
	d := NewSync(conn)
	d.SetRetry(RetryPolicy{MaxAttempts: 100, Backoff: time.Millisecond, Deadline: 5 * time.Millisecond})
	_, _, err := d.Wait(d.Submit([]driver.Stmt{sel(1)}))
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if st := d.Stats(); st.Retries >= 100 {
		t.Fatalf("deadline did not bound retries: %+v", st)
	}
}

// TestDegradationIsolatesPoison: a poisoned key inside a merged batch fails
// only its own statement; the siblings degrade to per-statement execution
// and still return rows. This is the merged-family degradation path.
func TestDegradationIsolatesPoison(t *testing.T) {
	srv, connect := rig(t)
	srv.SetFaults(faults.NewPlane(faults.Config{PoisonArgs: []sqldb.Value{int64(2)}}))
	conn, _ := connect(time.Millisecond)
	d := NewSync(conn, MergeStage(merge.New(merge.Config{Enabled: true})))
	d.SetRetry(retryPolicy())
	tk := d.Submit([]driver.Stmt{sel(1), sel(2), sel(3)})
	rs, _, err := d.Wait(tk)
	if err != nil {
		t.Fatalf("degraded batch returned terminal error: %v", err)
	}
	se := tk.StmtErrs()
	if se == nil {
		t.Fatalf("no per-statement errors recorded")
	}
	if se[0] != nil || se[2] != nil || !errors.Is(se[1], faults.ErrPermanent) {
		t.Fatalf("stmtErrs = %v", se)
	}
	if rs[0].Rows[0][1] != "apple" || rs[2].Rows[0][1] != "fig" {
		t.Fatalf("sibling results lost: %v", rs)
	}
	if rs[1] != nil {
		t.Fatalf("poisoned statement has a result: %v", rs[1])
	}
	st := d.Stats()
	if st.Degraded != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want degraded 1, errors 0", st)
	}
}

// TestSharedWindowDegradation: a poisoned key contributed by one session
// fails that session's statement only; the other session's coalesced window
// queries all succeed, and the hub counts retries separately from errors.
func TestSharedWindowDegradation(t *testing.T) {
	srv, connect := rig(t)
	srv.SetFaults(faults.NewPlane(faults.Config{PoisonArgs: []sqldb.Value{int64(3)}}))
	hubConn, _ := connect(time.Millisecond)
	hub := NewHub(hubConn, 0)
	hub.SetRetry(retryPolicy())
	hub.SetWindow(2)

	connA, _ := connect(time.Millisecond)
	connB, _ := connect(time.Millisecond)
	a, b := NewShared(hub, connA), NewShared(hub, connB)

	ta := a.Submit([]driver.Stmt{sel(1), sel(3)})
	tb := b.Submit([]driver.Stmt{sel(1), sel(2)})

	rsA, _, errA := a.Wait(ta)
	rsB, _, errB := b.Wait(tb)
	if errA != nil || errB != nil {
		t.Fatalf("terminal errors: %v / %v", errA, errB)
	}
	if se := ta.StmtErrs(); se == nil || se[0] != nil || !errors.Is(se[1], faults.ErrPermanent) {
		t.Fatalf("session A stmtErrs = %v", ta.StmtErrs())
	}
	if se := tb.StmtErrs(); se != nil {
		t.Fatalf("session B stmtErrs = %v, want none", se)
	}
	if rsA[0].Rows[0][1] != "apple" || rsB[0].Rows[0][1] != "apple" || rsB[1].Rows[0][1] != "pear" {
		t.Fatalf("results lost: %v / %v", rsA, rsB)
	}
	hs := hub.Stats()
	if hs.Degraded != 1 || hs.Errors != 0 {
		t.Fatalf("hub stats = %+v, want degraded 1, errors 0", hs)
	}
}

// TestAsyncWriteRetryExactlyOnce: a pipelined write that retries through an
// outage executes its data effect exactly once (injected failures fire
// pre-execution, so only the final successful attempt lands).
func TestAsyncWriteRetryExactlyOnce(t *testing.T) {
	srv, connect := rig(t)
	srv.SetFaults(faults.NewPlane(faults.Config{
		Outages: []faults.Outage{{Shard: 0, From: 0, To: 2 * time.Millisecond}},
	}))
	conn, _ := connect(time.Millisecond)
	d := NewAsync(conn)
	defer d.Close()
	d.SetRetry(retryPolicy())
	tk := d.Submit([]driver.Stmt{{SQL: "UPDATE items SET qty = qty + 1 WHERE id = ?", Args: []sqldb.Value{int64(1)}}})
	if _, _, err := d.Wait(tk); err != nil {
		t.Fatalf("write failed: %v", err)
	}
	if st := d.Stats(); st.Retries == 0 {
		t.Fatalf("write did not retry: %+v", st)
	}
	srv.SetFaults(nil)
	rs := mustWait(t, d, d.Submit([]driver.Stmt{sel(1)}))
	if rs[0].Rows[0][2] != int64(6) {
		t.Fatalf("qty = %v, want exactly one increment (6)", rs[0].Rows[0][2])
	}
}
