package dispatch

import (
	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// Sync is the paper's dispatch strategy: Submit rewrites the batch through
// the pipeline stages and executes it immediately in one blocking round
// trip on the session's connection. Wait is then a cache hit. Like the
// query store it serves, a Sync dispatcher belongs to one session thread.
type Sync struct {
	conn   *driver.Conn
	stages []Stage
	retry  RetryPolicy
	box    statsBox
}

// SetRetry installs the recovery policy (retry/degradation) for this
// dispatcher's batches. Call before submitting.
func (s *Sync) SetRetry(p RetryPolicy) { s.retry = p }

// NewSync creates the synchronous dispatcher.
func NewSync(conn *driver.Conn, stages ...Stage) *Sync {
	return &Sync{conn: conn, stages: stages}
}

// Submit executes the batch now; the returned ticket is already complete.
func (s *Sync) Submit(stmts []driver.Stmt) *Ticket {
	return s.SubmitCtx(obs.Ctx{}, stmts)
}

// SubmitCtx is Submit with a span context for the batch's pipeline and
// execution spans. The blocking clock advance is unchanged from the
// untraced path: ExecBatch is exactly ExecBatchCtx at now plus AdvanceTo
// on success.
func (s *Sync) SubmitCtx(ctx obs.Ctx, stmts []driver.Stmt) *Ticket {
	s.box.addSubmit(len(stmts))
	t := &Ticket{stmts: stmts, ctx: ctx}
	clock := s.conn.Clock()
	now := clock.Now()
	out, demux, ss := applyStagesTraced(ctx, now, s.stages, stmts)
	r := execRecover(s.conn, ctx, now, out, demux, stmts, s.retry)
	// The session pays the virtual time it observed — on terminal failure
	// too, where r.done is the last failure-observation time (0 for real
	// engine errors, making this a no-op). A frozen clock after a failure
	// would replay the identical time-keyed fault rolls (and re-arrive
	// inside the same breaker-open window) forever.
	netsim.AdvanceTo(clock, r.done)
	t.results, t.err, t.stmtErrs = r.results, r.err, r.stmtErrs
	t.bs = batchStats(len(out), ss, r.shards)
	s.box.addExec(len(out), ss, r.err)
	s.box.addRecovery(r)
	return t
}

// Wait returns the already-computed results.
func (s *Sync) Wait(t *Ticket) ([]*sqldb.ResultSet, BatchStats, error) {
	return t.results, t.bs, t.err
}

// Deferred reports that Submit blocks until execution completes.
func (s *Sync) Deferred() bool { return false }

// Stats snapshots the dispatcher counters.
func (s *Sync) Stats() Stats { return s.box.snapshot() }

// Close is a no-op: Sync holds no resources.
func (s *Sync) Close() {}
