package dispatch

import (
	"time"

	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// Recovery defaults: the initial backoff is a fraction of a typical round
// trip (retry soon — most injected faults are instantaneous rolls) and the
// cap keeps walked-out schedules bounded so a long outage window is probed
// every couple of milliseconds of virtual time.
const (
	DefaultRetryBackoff = 100 * time.Microsecond
	DefaultMaxBackoff   = 2 * time.Millisecond
)

// RetryPolicy configures per-batch recovery for a dispatcher: capped
// exponential backoff retry of retriable (transient/timeout-class) injected
// failures, and graceful degradation of terminally-failed multi-statement
// batches to per-statement execution. The zero value disables recovery —
// every strategy then behaves exactly as before the fault plane existed.
//
// Retry is always safe here, for reads AND pipelined writes: injected
// faults fire before a batch executes (see internal/faults), so a failed
// attempt had no data effects, and real execution errors classify as
// permanent and are never retried — a write error still surfaces exactly
// once, at the same barrier/close point as without a policy.
//
// Backoff is VIRTUAL: a retry re-attempts the batch at (failure time +
// backoff) on the session's simulated timeline, which keys fresh fault
// rolls — so under any fault schedule that eventually recovers, the walked-
// out attempts deterministically find the recovery point.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions allowed per batch
	// (first try included). <= 1 disables recovery.
	MaxAttempts int
	// Backoff is the delay before the first retry, doubling on each
	// subsequent one; <= 0 selects DefaultRetryBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling; <= 0 selects DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Deadline bounds a batch's whole recovery effort in virtual time from
	// its first arrival: a retry that would begin past the deadline is not
	// attempted and the batch fails with the last error. 0 means no
	// deadline.
	Deadline time.Duration
}

// enabled reports whether the policy performs any recovery at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// backoffAfter is the capped exponential delay scheduled after the n-th
// failed attempt (1-based).
func (p RetryPolicy) backoffAfter(attempt int) time.Duration {
	b := p.Backoff
	if b <= 0 {
		b = DefaultRetryBackoff
	}
	ceil := p.MaxBackoff
	if ceil <= 0 {
		ceil = DefaultMaxBackoff
	}
	for i := 1; i < attempt && b < ceil; i++ {
		b *= 2
	}
	if b > ceil {
		b = ceil
	}
	return b
}

// recovery is the outcome of one resilient batch execution: either plain
// success (results per original statement), terminal failure (err), or a
// degraded partial result (stmtErrs aligned with the original statements,
// nil entries succeeded).
type recovery struct {
	results  []*sqldb.ResultSet
	stmtErrs []error
	done     time.Duration
	shards   int
	retries  int64
	degraded bool
	err      error
}

// execAttempts drives one statement list through the retry loop: execute at
// `at`, and while the failure is retriable (injected transient/timeout) and
// attempts and deadline allow, re-attempt at the failure's observation time
// plus the capped exponential backoff. Returns the last attempt's outcome
// and how many retries were spent; `done` carries the virtual completion
// time on success and the last failure-observation time on error.
func execAttempts(conn *driver.Conn, ctx obs.Ctx, arrival time.Duration, stmts []driver.Stmt, policy RetryPolicy) ([]*sqldb.ResultSet, time.Duration, int, int64, error) {
	var retries int64
	var deadline time.Duration
	if policy.Deadline > 0 {
		deadline = arrival + policy.Deadline
	}
	at := arrival
	for attempt := 1; ; attempt++ {
		results, done, shards, err := conn.ExecBatchFanout(ctx, at, stmts)
		if err == nil {
			return results, done, shards, retries, nil
		}
		// On failure `done` is the virtual instant the failure was OBSERVED
		// (after any wasted trip/timeout delay) — backoff schedules from it.
		if !faults.Retriable(err) || attempt >= policy.MaxAttempts {
			return nil, done, shards, retries, err
		}
		next := done + policy.backoffAfter(attempt)
		if deadline > 0 && next > deadline {
			return nil, done, shards, retries, err
		}
		retries++
		if ctx.Enabled() {
			ctx.Instant("retry", "backoff", next,
				obs.Arg{K: "attempt", V: attempt + 1},
				obs.Arg{K: "err", V: err.Error()})
		}
		at = next
	}
}

// execRecover is the resilient execution shared by every dispatch strategy:
// the rewritten batch `out` runs under the retry loop; if it still fails on
// an INJECTED error (so the attempt demonstrably had no data effects) and
// the original batch has more than one statement, execution degrades to the
// ORIGINAL statements one at a time — each with its own retry budget — so
// one poisoned key fails one statement instead of every query that was
// merged or coalesced with it. Degraded results need no demux: they are
// already per original statement.
func execRecover(conn *driver.Conn, ctx obs.Ctx, arrival time.Duration, out []driver.Stmt, demux Demux, orig []driver.Stmt, policy RetryPolicy) recovery {
	var r recovery
	var results []*sqldb.ResultSet
	results, r.done, r.shards, r.retries, r.err = execAttempts(conn, ctx, arrival, out, policy)
	if r.err == nil {
		if demux != nil {
			results, r.err = demux(results)
		}
		r.results = results
		return r
	}
	if !policy.enabled() || !faults.Injected(r.err) || len(orig) <= 1 {
		return r
	}
	batchErr := r.err
	r.err = nil
	r.degraded = true
	r.results = make([]*sqldb.ResultSet, len(orig))
	r.stmtErrs = make([]error, len(orig))
	if ctx.Enabled() {
		ctx.Instant("degrade", "per-stmt", r.done,
			obs.Arg{K: "stmts", V: len(orig)},
			obs.Arg{K: "err", V: batchErr.Error()})
	}
	// Sequential per-statement replay from the batch failure point keeps
	// statement order (writes included) and a deterministic timeline.
	cursor := r.done
	failed := 0
	for i := range orig {
		res, done, shards, retries, err := execAttempts(conn, ctx, cursor, orig[i:i+1], policy)
		r.retries += retries
		if shards > r.shards {
			r.shards = shards
		}
		cursor = done
		if err != nil {
			r.stmtErrs[i] = err
			failed++
			continue
		}
		r.results[i] = res[0]
	}
	r.done = cursor
	if failed == len(orig) {
		// Nothing was salvaged; surface the batch failure terminally rather
		// than as a sea of per-statement errors.
		r.results, r.stmtErrs, r.degraded = nil, nil, false
		r.err = batchErr
	}
	return r
}

// StmtErrs exposes a degraded ticket's per-original-statement errors (nil
// when the batch either fully succeeded or failed terminally). Index i
// corresponds to the i-th statement submitted in this ticket's batch; nil
// entries succeeded and have their result in the Wait results. Valid after
// Wait returns.
func (t *Ticket) StmtErrs() []error { return t.stmtErrs }

// addRecovery accounts one resilient execution's retry/degradation effort.
func (b *statsBox) addRecovery(r recovery) {
	if r.retries == 0 && !r.degraded {
		return
	}
	b.mu.Lock()
	b.stats.Retries += r.retries
	if r.degraded {
		b.stats.Degraded++
	}
	b.mu.Unlock()
}
