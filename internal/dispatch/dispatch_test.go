package dispatch

import (
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/merge"
	"repro/internal/netsim"
	"repro/internal/sqldb"
	"repro/internal/sqldb/engine"
)

// rig builds a server with a seeded table and returns a connection factory
// so tests can open several sessions (each on its own clock) against the
// same database.
func rig(t *testing.T) (*driver.Server, func(rtt time.Duration) (*driver.Conn, *netsim.VirtualClock)) {
	t.Helper()
	db := engine.New()
	s := db.NewSession()
	for _, sql := range []string{
		"CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT)",
		"INSERT INTO items (id, name, qty) VALUES (1, 'apple', 5), (2, 'pear', 7), (3, 'fig', 2)",
	} {
		if _, err := s.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	srv := driver.NewServer(db, netsim.NewVirtualClock(), driver.DefaultCostModel())
	connect := func(rtt time.Duration) (*driver.Conn, *netsim.VirtualClock) {
		clock := netsim.NewVirtualClock()
		return srv.Connect(netsim.NewLink(clock, rtt)), clock
	}
	return srv, connect
}

func sel(id int64) driver.Stmt {
	return driver.Stmt{SQL: "SELECT id, name, qty FROM items WHERE id = ?", Args: []sqldb.Value{id}}
}

func mustWait(t *testing.T, d Dispatcher, tk *Ticket) []*sqldb.ResultSet {
	t.Helper()
	rs, _, err := d.Wait(tk)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestSyncAsyncSameResults runs the same batch through both strategies and
// requires identical rows per original statement.
func TestSyncAsyncSameResults(t *testing.T) {
	_, connect := rig(t)
	stmts := []driver.Stmt{sel(1), sel(2), {SQL: "SELECT name FROM items WHERE qty > ?", Args: []sqldb.Value{int64(3)}}}

	connS, _ := connect(time.Millisecond)
	syncD := NewSync(connS)
	want := mustWait(t, syncD, syncD.Submit(stmts))

	connA, _ := connect(time.Millisecond)
	asyncD := NewAsync(connA)
	defer asyncD.Close()
	got := mustWait(t, asyncD, asyncD.Submit(stmts))

	if len(want) != len(got) {
		t.Fatalf("result counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].String() != got[i].String() {
			t.Fatalf("stmt %d differs:\n%s\nvs\n%s", i, want[i], got[i])
		}
	}
}

// TestAsyncOverlapsCompute pins the virtual-time contract: compute charged
// between Submit and Wait is overlapped with batch execution, so Wait pays
// only the residual — and pays the full cost when there is no compute.
func TestAsyncOverlapsCompute(t *testing.T) {
	_, connect := rig(t)

	// No compute between submit and wait: the wait pays the full cost,
	// exactly like the synchronous strategy on an identical connection.
	connA, clockA := connect(time.Millisecond)
	a := NewAsync(connA)
	defer a.Close()
	mustWait(t, a, a.Submit([]driver.Stmt{sel(1)}))
	full := clockA.Now()
	if full <= time.Millisecond {
		t.Fatalf("full wait %v, want > link rtt", full)
	}

	connB, clockB := connect(time.Millisecond)
	b := NewAsync(connB)
	defer b.Close()
	tk := b.Submit([]driver.Stmt{sel(1)})
	clockB.Advance(50 * time.Millisecond) // app compute while the batch flies
	mustWait(t, b, tk)
	if got := clockB.Now(); got != 50*time.Millisecond {
		t.Fatalf("wait after overlapping compute advanced clock to %v, want 50ms", got)
	}
	if b.Stats().OverlapSaved <= 0 {
		t.Fatal("no overlap recorded")
	}
}

// TestSharedCoalescesAcrossSessions: identical lookups from two sessions
// execute once at the server and both sessions read correct rows.
func TestSharedCoalescesAcrossSessions(t *testing.T) {
	srv, connect := rig(t)
	hubConn, _ := connect(time.Millisecond)
	hub := NewHub(hubConn, 0)

	conn1, _ := connect(time.Millisecond)
	conn2, _ := connect(time.Millisecond)
	d1 := NewShared(hub, conn1)
	d2 := NewShared(hub, conn2)

	before := srv.Stats().Queries
	t1 := d1.Submit([]driver.Stmt{sel(1), sel(2)})
	t2 := d2.Submit([]driver.Stmt{sel(2), sel(1)})

	rs1 := mustWait(t, d1, t1)
	rs2 := mustWait(t, d2, t2)
	if rs1[0].Rows[0][1] != "apple" || rs1[1].Rows[0][1] != "pear" {
		t.Fatalf("session 1 rows: %v %v", rs1[0].Rows, rs1[1].Rows)
	}
	if rs2[0].Rows[0][1] != "pear" || rs2[1].Rows[0][1] != "apple" {
		t.Fatalf("session 2 rows: %v %v", rs2[0].Rows, rs2[1].Rows)
	}
	if got := srv.Stats().Queries - before; got != 2 {
		t.Fatalf("server executed %d statements, want 2 (coalesced window)", got)
	}
	if hub.Stats().Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", hub.Stats().Coalesced)
	}
	_, bs2, _ := d2.Wait(t2) // waitable again: already-done ticket
	if bs2.SharedHits != 2 {
		t.Fatalf("session 2 shared hits = %d, want 2", bs2.SharedHits)
	}
}

// TestSharedWriteBarrier: a session's window reads registered before its
// write must observe pre-write state, and a read after the write must
// observe the new value.
func TestSharedWriteBarrier(t *testing.T) {
	_, connect := rig(t)
	hubConn, _ := connect(0)
	hub := NewHub(hubConn, 0)
	conn, _ := connect(0)
	d := NewShared(hub, conn)

	readT := d.Submit([]driver.Stmt{{SQL: "SELECT qty FROM items WHERE id = 1"}})
	writeT := d.Submit([]driver.Stmt{{SQL: "UPDATE items SET qty = 99 WHERE id = 1"}})
	afterT := d.Submit([]driver.Stmt{{SQL: "SELECT qty FROM items WHERE id = 1"}})

	if rs := mustWait(t, d, readT); rs[0].Rows[0][0] != int64(5) {
		t.Fatalf("pre-write read saw %v, want 5", rs[0].Rows[0][0])
	}
	if rs := mustWait(t, d, writeT); rs[0].RowsAffected != 1 {
		t.Fatalf("write affected %d rows", rs[0].RowsAffected)
	}
	if rs := mustWait(t, d, afterT); rs[0].Rows[0][0] != int64(99) {
		t.Fatalf("post-write read saw %v, want 99", rs[0].Rows[0][0])
	}
}

// TestSharedQuorumClosesWindow: with an expected batch count, the quorum
// submitter closes the window without any demand.
func TestSharedQuorumClosesWindow(t *testing.T) {
	srv, connect := rig(t)
	hubConn, _ := connect(0)
	hub := NewHub(hubConn, 0)
	hub.SetWindow(2)
	conn1, _ := connect(0)
	conn2, _ := connect(0)
	d1 := NewShared(hub, conn1)
	d2 := NewShared(hub, conn2)

	before := srv.Stats().Queries
	t1 := d1.Submit([]driver.Stmt{sel(3)})
	select {
	case <-t1.done:
		t.Fatal("window closed before quorum")
	default:
	}
	t2 := d2.Submit([]driver.Stmt{sel(3)}) // quorum: closes inline
	select {
	case <-t2.done:
	default:
		t.Fatal("quorum did not close the window")
	}
	mustWait(t, d1, t1)
	mustWait(t, d2, t2)
	if got := srv.Stats().Queries - before; got != 1 {
		t.Fatalf("server executed %d statements, want 1", got)
	}
}

// TestMergeStageThroughDispatchers: the merge stage coalesces a 1+N family
// under every strategy, with per-batch stats reported on the ticket.
func TestMergeStageThroughDispatchers(t *testing.T) {
	family := []driver.Stmt{sel(1), sel(2), sel(3)}
	for _, mk := range []struct {
		name  string
		build func(connect func(time.Duration) (*driver.Conn, *netsim.VirtualClock)) (Dispatcher, *driver.Server)
	}{
		{"sync", func(connect func(time.Duration) (*driver.Conn, *netsim.VirtualClock)) (Dispatcher, *driver.Server) {
			conn, _ := connect(0)
			return NewSync(conn, MergeStage(merge.New(merge.Config{Enabled: true}))), nil
		}},
		{"async", func(connect func(time.Duration) (*driver.Conn, *netsim.VirtualClock)) (Dispatcher, *driver.Server) {
			conn, _ := connect(0)
			return NewAsync(conn, MergeStage(merge.New(merge.Config{Enabled: true}))), nil
		}},
	} {
		_, connect := rig(t)
		d, _ := mk.build(connect)
		tk := d.Submit(family)
		rs, bs, err := d.Wait(tk)
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		if len(rs) != 3 {
			t.Fatalf("%s: %d results", mk.name, len(rs))
		}
		for i, want := range []string{"apple", "pear", "fig"} {
			if rs[i].Rows[0][1] != want {
				t.Fatalf("%s: stmt %d row %v, want %s", mk.name, i, rs[i].Rows, want)
			}
		}
		if bs.Sent != 1 || bs.Saved != 2 || bs.Groups != 1 {
			t.Fatalf("%s: batch stats %+v, want Sent 1 Saved 2 Groups 1", mk.name, bs)
		}
		d.Close()
	}
}

// TestAsyncErrorDeferredToWait: a failing batch reports its error at Wait,
// not at Submit.
func TestAsyncErrorDeferredToWait(t *testing.T) {
	_, connect := rig(t)
	conn, _ := connect(0)
	a := NewAsync(conn)
	defer a.Close()
	tk := a.Submit([]driver.Stmt{{SQL: "SELECT * FROM no_such_table"}})
	if _, _, err := a.Wait(tk); err == nil {
		t.Fatal("missing execution error at Wait")
	}
}

// TestSharedWindowAttributesMergeStats pins the fix for the lost window
// savings: when the hub's merge stage coalesces a cross-session family,
// the hub stats must carry the window-level Saved/Groups, and the tickets'
// BatchStats must pro-rate them across contributing sessions so the
// per-session shares sum to the window totals.
func TestSharedWindowAttributesMergeStats(t *testing.T) {
	_, connect := rig(t)
	hubConn, _ := connect(0)
	hub := NewHub(hubConn, 0, MergeStage(merge.New(merge.Config{Enabled: true})))
	conn1, _ := connect(0)
	conn2, _ := connect(0)
	d1 := NewShared(hub, conn1)
	d2 := NewShared(hub, conn2)

	// Two sessions contribute distinct members of one equality family:
	// the combined window merges 4 statements into 1.
	t1 := d1.Submit([]driver.Stmt{sel(1), sel(2)})
	t2 := d2.Submit([]driver.Stmt{sel(3), {SQL: "SELECT id, name, qty FROM items WHERE qty > ?", Args: []sqldb.Value{int64(100)}}})
	mustWait(t, d1, t1)
	mustWait(t, d2, t2)

	hs := hub.Stats()
	if hs.MergeSaved != 2 || hs.MergeGroups != 1 {
		t.Fatalf("hub merge stats: saved %d groups %d, want 2/1", hs.MergeSaved, hs.MergeGroups)
	}
	_, bs1, _ := d1.Wait(t1)
	_, bs2, _ := d2.Wait(t2)
	if got := bs1.Saved + bs2.Saved; int64(got) != hs.MergeSaved {
		t.Fatalf("pro-rated Saved %d+%d does not sum to hub %d", bs1.Saved, bs2.Saved, hs.MergeSaved)
	}
	if got := bs1.Groups + bs2.Groups; int64(got) != hs.MergeGroups {
		t.Fatalf("pro-rated Groups %d+%d does not sum to hub %d", bs1.Groups, bs2.Groups, hs.MergeGroups)
	}
	// Each ticket must be internally consistent: its per-family breakdown
	// sums to its own Saved share — and therefore cross-ticket family sums
	// reassemble the hub total.
	famSum := 0
	for i, bs := range []BatchStats{bs1, bs2} {
		perTicket := 0
		for _, n := range bs.SavedByFamily {
			perTicket += n
		}
		if perTicket != bs.Saved {
			t.Fatalf("ticket %d: SavedByFamily sums to %d, Saved is %d", i+1, perTicket, bs.Saved)
		}
		famSum += perTicket
	}
	if int64(famSum) != hs.MergeSaved {
		t.Fatalf("per-family shares sum to %d, hub saved %d", famSum, hs.MergeSaved)
	}
	// The bigger contributor gets the bigger share.
	if bs1.Saved < bs2.Saved {
		t.Fatalf("pro-rating inverted: 2-stmt entry got %d, 2-stmt entry got %d", bs1.Saved, bs2.Saved)
	}
}

// TestSharedWindowErrorAccounting pins the error-path consistency fix: a
// failing window still counts its attempt (Windows, StmtsOut) and counts
// the failure in Errors, and every contributing session observes the
// error.
func TestSharedWindowErrorAccounting(t *testing.T) {
	_, connect := rig(t)
	hubConn, _ := connect(0)
	hub := NewHub(hubConn, 0)
	conn1, _ := connect(0)
	conn2, _ := connect(0)
	d1 := NewShared(hub, conn1)
	d2 := NewShared(hub, conn2)

	t1 := d1.Submit([]driver.Stmt{sel(1)})
	t2 := d2.Submit([]driver.Stmt{{SQL: "SELECT * FROM no_such_table"}})
	hub.CloseWindow()

	if _, _, err := d1.Wait(t1); err == nil {
		t.Fatal("session 1 did not observe the window error")
	}
	if _, _, err := d2.Wait(t2); err == nil {
		t.Fatal("session 2 did not observe the window error")
	}
	hs := hub.Stats()
	if hs.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", hs.Errors)
	}
	if hs.Windows != 1 {
		t.Fatalf("Windows = %d, want 1 (attempts count on the error path)", hs.Windows)
	}
	if hs.StmtsOut != 2 {
		t.Fatalf("StmtsOut = %d, want 2 (attempted statements count on the error path)", hs.StmtsOut)
	}
}

// TestSharedExtraSessionBeyondQuorum: a front end registered past the
// SetWindow quorum must not resurrect closed generations — its batches
// join the lowest open generation, and CloseWindow drains everything
// without spinning.
func TestSharedExtraSessionBeyondQuorum(t *testing.T) {
	srv, connect := rig(t)
	hubConn, _ := connect(0)
	hub := NewHub(hubConn, 0)
	hub.SetWindow(2)
	conns := make([]*Shared, 3)
	for i := range conns {
		c, _ := connect(0)
		conns[i] = NewShared(hub, c)
	}

	t1 := conns[0].Submit([]driver.Stmt{sel(1)})
	t2 := conns[1].Submit([]driver.Stmt{sel(1)}) // quorum: generation 0 closes
	mustWait(t, conns[0], t1)
	mustWait(t, conns[1], t2)

	before := srv.Stats().Queries
	t3 := conns[2].Submit([]driver.Stmt{sel(2)}) // would be gen 0, clamps to gen 1
	done := make(chan struct{})
	go func() {
		hub.CloseWindow() // must terminate, not scan ints forever
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("CloseWindow did not terminate with an entry below nextClose")
	}
	if rs := mustWait(t, conns[2], t3); rs[0].Rows[0][1] != "pear" {
		t.Fatalf("extra session rows: %v", rs[0].Rows)
	}
	if got := srv.Stats().Queries - before; got != 1 {
		t.Fatalf("drain executed %d statements, want 1", got)
	}
}

// TestSharedPoisonReleasesParkedWaiter: dropping the quorum (SetWindow(0))
// and draining releases a session parked on a generation that will never
// fill — the escape hatch the throughput harness uses when a session dies
// mid-round.
func TestSharedPoisonReleasesParkedWaiter(t *testing.T) {
	_, connect := rig(t)
	hubConn, _ := connect(0)
	hub := NewHub(hubConn, 0)
	hub.SetWindow(2)
	conn1, _ := connect(0)
	d1 := NewShared(hub, conn1)

	tk := d1.Submit([]driver.Stmt{sel(3)})
	released := make(chan struct{})
	go func() {
		mustWait(t, d1, tk) // parks: the second session never arrives
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("waiter returned before the quorum or a drain")
	case <-time.After(10 * time.Millisecond):
	}
	hub.SetWindow(0)
	hub.CloseWindow()
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("poisoned hub did not release the parked waiter")
	}
}

// gateStage blocks the async worker inside the pipeline until released,
// so a test can pile up submissions behind a deliberately stuck worker.
type gateStage struct{ release chan struct{} }

func (g gateStage) Apply(stmts []driver.Stmt) ([]driver.Stmt, Demux, StageStats) {
	<-g.release
	return stmts, nil, StageStats{}
}

// TestAsyncSubmitNeverBlocks is the regression test for the fixed-depth
// ticket channel: NewAsync once buffered 16 tickets, so a session
// submitting more flushes than that before its first Wait blocked in
// Submit and silently serialized on the worker. The queue is unbounded
// now: with the worker stuck inside the first batch, 40 further Submits
// must all return, and every ticket must still complete in FIFO order once
// the worker is released.
func TestAsyncSubmitNeverBlocks(t *testing.T) {
	_, connect := rig(t)
	conn, _ := connect(0)
	gate := gateStage{release: make(chan struct{})}
	a := NewAsync(conn, gate)
	defer a.Close()

	const burst = 40 // well past the old channel depth of 16
	tickets := make([]*Ticket, 0, burst)
	submitted := make(chan struct{})
	go func() {
		defer close(submitted)
		for i := 0; i < burst; i++ {
			tickets = append(tickets, a.Submit([]driver.Stmt{sel(int64(i%3 + 1))}))
		}
	}()
	select {
	case <-submitted:
	case <-time.After(10 * time.Second):
		t.Fatal("Submit blocked on queue depth with the worker busy")
	}
	// The worker may have popped the first ticket before stalling in the
	// gate, so the peak is at least burst-1 — still far past the old cap.
	if peak := a.Stats().PeakQueue; peak < burst-1 || peak <= DefaultAsyncDepth {
		t.Fatalf("PeakQueue = %d, want >= %d (every submission queued)", peak, burst-1)
	}

	close(gate.release)
	names := []string{"apple", "pear", "fig"}
	for i, tk := range tickets {
		rs := mustWait(t, a, tk)
		if got := rs[0].Rows[0][1]; got != names[i%3] {
			t.Fatalf("ticket %d out of order: row %v, want %s", i, rs[0].Rows, names[i%3])
		}
	}
}

// TestProrate pins the remainder distribution: shares are proportional,
// deterministic, and always sum to the total.
func TestProrate(t *testing.T) {
	cases := []struct {
		total   int
		weights []int
		want    []int
	}{
		{2, []int{2, 2}, []int{1, 1}},
		{3, []int{2, 1}, []int{2, 1}},
		{1, []int{1, 1, 1}, []int{1, 0, 0}},
		{5, []int{0, 5}, []int{0, 5}},
		{4, []int{0, 0}, []int{4, 0}},
		{0, []int{3, 4}, []int{0, 0}},
		{7, []int{1, 1, 1}, []int{3, 2, 2}},
	}
	for _, tc := range cases {
		got := prorate(tc.total, tc.weights)
		sum := 0
		for _, n := range got {
			sum += n
		}
		if sum != tc.total {
			t.Fatalf("prorate(%d,%v) = %v, sums to %d", tc.total, tc.weights, got, sum)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("prorate(%d,%v) = %v, want %v", tc.total, tc.weights, got, tc.want)
			}
		}
	}
}

// TestProrateFamiliesConsistentWithSavedShares pins the invariant the
// review flagged: family shares are allocated inside the Saved shares, so
// every entry's family breakdown sums to its Saved share and every
// family's cross-entry sum equals its total.
func TestProrateFamiliesConsistentWithSavedShares(t *testing.T) {
	// The adversarial case: 3 total saved, one per family, two equal-weight
	// entries. Independent pro-rating would give entry 0 a Saved of 2 but a
	// family sum of 3; nested allocation must keep them equal.
	famTotals := [merge.NumFamilies]int{1, 1, 1}
	savedShares := []int{2, 1}
	got := prorateFamilies(famTotals, savedShares)
	var perFam [merge.NumFamilies]int
	for k, shares := range got {
		sum := 0
		for f, n := range shares {
			sum += n
			perFam[f] += n
		}
		if sum != savedShares[k] {
			t.Fatalf("entry %d: family shares %v sum to %d, Saved share is %d",
				k, shares, sum, savedShares[k])
		}
	}
	if perFam != famTotals {
		t.Fatalf("cross-entry family sums %v, want %v", perFam, famTotals)
	}
}
