package dispatch

import (
	"sort"

	"repro/internal/driver"
	"repro/internal/merge"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// DefaultWindowCap bounds how many statements a demand-closed shared
// window accumulates before it closes on its own (a demand — any session
// waiting on one of its tickets — closes it earlier). With a session
// quorum configured (SetWindow), windows are bounded by the quorum instead
// and the cap does not apply.
const DefaultWindowCap = 256

// Hub is the server-side accumulation window shared by the Shared
// dispatchers of concurrent sessions (ROADMAP "cross-request batching").
// Read-only batches submitted by any session collect in windows; when a
// window closes, statements that are identical across sessions collapse to
// one execution, the pipeline stages (batch merging) rewrite the combined
// batch, and it executes in a single round trip on the hub's own
// connection. Results are then demultiplexed back to every contributing
// session.
//
// Window close is governed by a VIRTUAL-TIME policy (SetWindow): it
// depends only on the sessions' own progress — which batch each session
// has reached, and the virtual arrival times stamped by their simulated
// clocks — never on the host's wall clock. An earlier design kept windows
// open for a host-timed grace period so concurrent submitters could meet;
// that made window counts, coalescing stats, and therefore the
// shared-dispatch throughput numbers host-speed-dependent and CI-flaky.
// Under the virtual-time policy two identical runs produce identical
// windows, bit for bit, on any host — and the wallclock analyzer in
// internal/lint now rejects any reintroduction of host timers here at
// vet time.
//
// A Hub is safe for concurrent use; the window mutex serializes closes.
type Hub struct {
	conn   *driver.Conn
	stages []Stage
	cap    int
	// retry is the recovery policy for window executions (SetRetry); the
	// zero value disables recovery. Read under box.mu by window closes.
	retry RetryPolicy

	// expected is the session quorum (SetWindow): with expected > 0, each
	// session's j-th read batch since the last drain joins window
	// generation j, and generation j closes exactly when all expected
	// sessions have contributed their j-th batch. Zero (the default) keeps
	// the single-session policy: one accumulating window, closed by the
	// first demand or the statement cap.
	expected int

	box statsBox

	// tr/track are the hub's tracer and exporter track (SetTracer),
	// guarded by box.mu like the window state. A window is a hub-level
	// event with many contributing sessions, so its span is a root on the
	// hub's own track; each contributing batch additionally records an
	// entry span under its session's flush context.
	tr    *obs.Tracer
	track string

	// Window state, guarded by box.mu (closes hold it across execution so
	// a closing session acts for everyone racing it).
	open      *window         // the accumulating window (expected == 0)
	gens      map[int]*window // open generations (expected > 0)
	nextGen   map[*Shared]int // each session's next generation index
	nextClose int             // lowest generation not yet closed
	owners    int             // sessions registered (owner ids handed out)
}

// window is one accumulation of batches awaiting a combined execution.
type window struct {
	entries []*windowEntry
	stmts   int
}

// windowEntry is one session's batch waiting in a window, with the routing
// of its statements into the combined batch.
type windowEntry struct {
	t      *Ticket
	owner  *Shared
	routes []int // per original statement: index into the combined batch
	intro  int   // statements this entry introduced (first occurrence)
}

// NewHub creates a shared accumulation window over a dedicated connection.
// cap <= 0 selects DefaultWindowCap. The stages run once per window over
// the combined cross-session batch.
func NewHub(conn *driver.Conn, cap int, stages ...Stage) *Hub {
	if cap <= 0 {
		cap = DefaultWindowCap
	}
	return &Hub{conn: conn, stages: stages, cap: cap}
}

// Stats snapshots hub-level counters (windows closed, statements coalesced
// across sessions, statements actually executed).
func (h *Hub) Stats() Stats { return h.box.snapshot() }

// SetTracer attaches a tracer for window spans on the given exporter
// track. Call it before sessions start submitting.
func (h *Hub) SetTracer(tr *obs.Tracer, track string) {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	h.tr = tr
	h.track = track
}

// SetRetry installs the recovery policy for window executions; Shared
// front ends created from this hub after the call inherit it for their
// write-barrier batches. Call before sessions start submitting.
func (h *Hub) SetRetry(p RetryPolicy) {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	h.retry = p
}

// SetWindow configures the virtual-time accumulation policy: with
// `expected` > 0 (typically the number of concurrent sessions), each
// session's j-th read batch joins window generation j and the generation
// closes exactly when all expected sessions have contributed — a trigger
// driven purely by session progress on the simulated timeline, so window
// contents and stats are deterministic. A session demanding a result
// blocks until its window's quorum fills; the policy therefore assumes
// sessions replay symmetric workloads (the lockstep throughput harness) or
// drain explicitly with CloseWindow. The default (0) closes on first
// demand — correct for a single session, where there is nobody to wait
// for.
func (h *Hub) SetWindow(expected int) {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	h.expected = expected
}

// register hands out the owner id that orders a session's entries inside a
// window (virtual-arrival ties break on it, so creation order — not
// goroutine scheduling — decides).
func (h *Hub) register(s *Shared) int {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	h.owners++
	return h.owners
}

// add appends a read-only batch: to the session's current generation under
// a quorum policy (closing every generation whose quorum is now full), or
// to the single accumulating window otherwise (closing at the statement
// cap).
func (h *Hub) add(t *Ticket, owner *Shared) {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	e := &windowEntry{t: t, owner: owner}
	if h.expected > 0 {
		if h.gens == nil {
			h.gens = make(map[int]*window)
			h.nextGen = make(map[*Shared]int)
		}
		g := h.nextGen[owner]
		if g < h.nextClose {
			// A session that fell behind the close frontier (registered
			// after the quorum was configured, or past the expected count)
			// joins the lowest open generation instead of resurrecting a
			// closed one.
			g = h.nextClose
		}
		h.nextGen[owner] = g + 1
		w := h.gens[g]
		if w == nil {
			w = &window{}
			h.gens[g] = w
		}
		w.entries = append(w.entries, e)
		w.stmts += len(t.stmts)
		h.closeReadyLocked()
		return
	}
	if h.open == nil {
		h.open = &window{}
	}
	h.open.entries = append(h.open.entries, e)
	h.open.stmts += len(t.stmts)
	if h.open.stmts >= h.cap {
		w := h.open
		h.open = nil
		h.closeWindowLocked(w, -1)
	}
}

// closeReadyLocked closes full generations in order. Generations fill in
// order too — a session reaches its j+1st batch only after its j-th — so
// the loop normally closes at most the generation the caller just
// completed.
func (h *Hub) closeReadyLocked() {
	for {
		w := h.gens[h.nextClose]
		if w == nil || len(w.entries) < h.expected {
			return
		}
		gen := h.nextClose
		delete(h.gens, gen)
		h.nextClose++
		h.closeWindowLocked(w, gen)
	}
}

// waitForTicket blocks until t completes. Under a quorum policy the close
// is the quorum's job — the laggard sessions' own submissions fill the
// window — so the demander just parks on the ticket; there is no wall-
// clock grace anywhere. Without a quorum the demander closes the window
// itself.
func (h *Hub) waitForTicket(t *Ticket) {
	h.box.mu.Lock()
	expected := h.expected
	h.box.mu.Unlock()
	if expected == 0 {
		select {
		case <-t.done:
			return
		default:
			h.CloseWindow()
		}
	}
	<-t.done
}

// CloseWindow executes every open window, in generation order, filling
// each contributing ticket, and realigns the generation counters so the
// next accumulation starts a fresh round. Sessions call it through Wait
// (demand-driven close, quorum-less hubs only) and write barriers; the
// harness calls it to drain speculative reads between lockstep rounds.
func (h *Hub) CloseWindow() {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	if w := h.open; w != nil {
		h.open = nil
		h.closeWindowLocked(w, -1)
	}
	// Close open generations lowest-first by scanning the key set, not by
	// counting up from nextClose: a session beyond the quorum (more
	// front-ends registered than SetWindow expected) can repopulate a
	// generation below nextClose, which a counting loop would never reach.
	for len(h.gens) > 0 {
		lowest := -1
		for g := range h.gens {
			if lowest == -1 || g < lowest {
				lowest = g
			}
		}
		w := h.gens[lowest]
		delete(h.gens, lowest)
		h.closeWindowLocked(w, lowest)
	}
	h.nextClose = 0
	if h.nextGen != nil {
		clear(h.nextGen)
	}
}

// closeWindowLocked coalesces, executes, and demultiplexes one window.
// gen is the quorum generation being closed, or -1 for demand- and
// cap-triggered closes (the quorum-less policies have no generations).
func (h *Hub) closeWindowLocked(w *window, gen int) {
	entries := w.entries
	if len(entries) == 0 {
		return
	}

	// Deterministic window order: entries sort by the virtual arrival time
	// their session's simulated clock stamped at Submit, with ties broken
	// by session creation order — never by which goroutine reached the hub
	// first. Coalescing attribution (who introduced a statement, who hit
	// it) is therefore reproducible run to run.
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].t.arrival != entries[j].t.arrival {
			return entries[i].t.arrival < entries[j].t.arrival
		}
		return entries[i].owner.id < entries[j].owner.id
	})

	// Coalesce: identical statements across (and within) the window's
	// batches execute once. Entries are walked in sorted order, so the
	// combined batch respects every session's own statement order.
	var combined []driver.Stmt
	byKey := make(map[string]int)
	arrival := entries[0].t.arrival
	totalIn := 0
	for _, e := range entries {
		if e.t.arrival > arrival {
			arrival = e.t.arrival
		}
		e.routes = make([]int, len(e.t.stmts))
		for i, st := range e.t.stmts {
			totalIn++
			k := st.Key()
			idx, dup := byKey[k]
			if !dup {
				idx = len(combined)
				byKey[k] = idx
				combined = append(combined, st)
				e.intro++
			}
			e.routes[i] = idx
		}
	}

	// The window span is a root on the hub's own track: a window belongs
	// to every contributing session at once, so it cannot live under any
	// single page tree. It spans first contribution to completion; the
	// combined batch's execution spans parent under it.
	var wctx obs.Ctx
	if h.tr.Enabled() {
		wctx = h.tr.Root(h.track, "window", "window", entries[0].t.arrival,
			obs.Arg{K: "gen", V: gen},
			obs.Arg{K: "entries", V: len(entries)},
			obs.Arg{K: "stmts_in", V: totalIn},
			obs.Arg{K: "coalesced", V: totalIn - len(combined)})
	}

	out, demux, ss := applyStagesTraced(wctx, arrival, h.stages, combined)
	r := execRecover(h.conn, wctx, arrival, out, demux, combined, h.retry)
	wctx.End(r.done)

	// Window-level accounting: attempts (Windows, Coalesced, StmtsOut) and
	// errors count explicitly, so a failed window is visible rather than
	// silently under-reported, and the merge stage's window-level savings
	// land on the hub instead of vanishing. Retried attempts that recovered
	// count in Retries, NOT Errors — only a terminal failure is an error, so
	// the hub's stats stay deterministic under injected faults.
	h.box.stats.Windows++
	h.box.stats.Coalesced += int64(totalIn - len(combined))
	h.box.stats.StmtsOut += int64(len(out))
	h.box.stats.MergeSaved += int64(ss.Saved)
	h.box.stats.MergeGroups += int64(ss.Groups)
	h.box.stats.Retries += r.retries
	if r.degraded {
		h.box.stats.Degraded++
	}
	if r.err != nil {
		h.box.stats.Errors++
	}

	// Pro-rate the window's merge savings across the contributing entries
	// by the statements each introduced into the combined batch, so
	// per-session (and per-store) merge counters sum to the hub totals.
	intros := make([]int, len(entries))
	for i, e := range entries {
		intros[i] = e.intro
	}
	savedShares := prorate(ss.Saved, intros)
	groupShares := prorate(ss.Groups, intros)
	famShares := prorateFamilies(ss.SavedByFamily, savedShares)

	for k, e := range entries {
		t := e.t
		t.completeAt = r.done
		// The entry span lives in the session's own page tree (under its
		// flush context): this batch rode a shared window from its submit
		// to the window's completion, coalescing hits statements.
		if t.ctx.Enabled() {
			t.ctx.Child("window", "entry", t.arrival,
				obs.Arg{K: "gen", V: gen},
				obs.Arg{K: "intro", V: e.intro},
				obs.Arg{K: "hits", V: len(t.stmts) - e.intro}).End(r.done)
		}
		t.bs = BatchStats{
			Sent:          e.intro,
			SharedHits:    len(t.stmts) - e.intro,
			Saved:         savedShares[k],
			Groups:        groupShares[k],
			SavedByFamily: famShares[k],
			Shards:        r.shards,
		}
		if r.err != nil {
			t.err = r.err
		} else {
			// Route the window's per-combined-statement results (and, for a
			// degraded window, failures) back onto this entry's statements: a
			// poisoned key fails exactly the sessions that asked for it.
			rs := make([]*sqldb.ResultSet, len(e.routes))
			var se []error
			for i, idx := range e.routes {
				rs[i] = r.results[idx]
				if r.stmtErrs != nil && r.stmtErrs[idx] != nil {
					if se == nil {
						se = make([]error, len(e.routes))
					}
					se[i] = r.stmtErrs[idx]
				}
			}
			t.results = rs
			t.stmtErrs = se
		}
		close(t.done)
	}
}

// prorateFamilies splits per-family saved totals across entries INSIDE the
// Saved shares already allotted: each entry's family breakdown sums to
// exactly its Saved share (so a ticket's BatchStats is internally
// consistent), and each family's cross-entry sum equals its window total.
// Families fill entry capacity greedily in entry order; the fill pointer
// only advances, so both invariants hold whenever the family totals sum to
// the Saved total (which Plan.SavedByFamily guarantees).
func prorateFamilies(famTotals [merge.NumFamilies]int, savedShares []int) [][merge.NumFamilies]int {
	out := make([][merge.NumFamilies]int, len(savedShares))
	remaining := append([]int(nil), savedShares...)
	k := 0
	for f, n := range famTotals {
		for n > 0 && k < len(remaining) {
			if remaining[k] == 0 {
				k++
				continue
			}
			take := n
			if remaining[k] < take {
				take = remaining[k]
			}
			out[k][f] += take
			remaining[k] -= take
			n -= take
		}
	}
	return out
}

// prorate splits total across recipients proportionally to their weights,
// handing the rounding remainder out one unit at a time in recipient order
// so the shares always sum to total. Zero-weight recipients get nothing
// unless every weight is zero, in which case the first recipient absorbs
// the total (the degenerate case cannot arise for window entries, whose
// weights sum to the combined batch size).
func prorate(total int, weights []int) []int {
	out := make([]int, len(weights))
	if total == 0 || len(weights) == 0 {
		return out
	}
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	if wsum == 0 {
		out[0] = total
		return out
	}
	given := 0
	for i, w := range weights {
		out[i] = total * w / wsum
		given += out[i]
	}
	for i := 0; given < total; i = (i + 1) % len(weights) {
		if weights[i] > 0 {
			out[i]++
			given++
		}
	}
	return out
}

// Shared is the per-session front end of a Hub: read-only batches go to
// the shared window, write-containing batches act as per-session barriers
// — this session's earlier window reads must complete first (so they keep
// their order relative to the write), then the batch executes on the
// session's own connection, preserving its transaction state.
type Shared struct {
	hub    *Hub
	conn   *driver.Conn
	clock  netsim.Clock
	stages []Stage
	retry  RetryPolicy
	box    statsBox
	id     int

	// lastWindow is this session's most recent window ticket — the batch a
	// write must barrier behind. Only the session's own thread touches it.
	lastWindow *Ticket
}

// NewShared creates a session front end over hub. The stages apply to this
// session's write-containing batches (which bypass the window); window
// batches use the hub's stages.
func NewShared(hub *Hub, conn *driver.Conn, stages ...Stage) *Shared {
	s := &Shared{hub: hub, conn: conn, clock: conn.Clock(), stages: stages}
	s.id = hub.register(s)
	s.hub.box.mu.Lock()
	s.retry = hub.retry
	s.hub.box.mu.Unlock()
	return s
}

// SetRetry installs the recovery policy for this session's write-barrier
// batches (window batches use the hub's policy). Call before submitting.
func (s *Shared) SetRetry(p RetryPolicy) { s.retry = p }

// Hub returns the shared accumulation window this front end feeds.
func (s *Shared) Hub() *Hub { return s.hub }

// Submit routes the batch: reads accumulate in the shared window, writes
// barrier this session's window reads and execute on the session
// connection. Both return in session virtual time (completion is paid at
// Wait).
func (s *Shared) Submit(stmts []driver.Stmt) *Ticket {
	return s.SubmitCtx(obs.Ctx{}, stmts)
}

// SubmitCtx is Submit with a span context: window entries record under it
// when their window closes, write barriers record their execution spans
// directly.
func (s *Shared) SubmitCtx(ctx obs.Ctx, stmts []driver.Stmt) *Ticket {
	s.box.addSubmit(len(stmts))
	t := &Ticket{stmts: stmts, arrival: s.clock.Now(), ctx: ctx, done: make(chan struct{})}
	if !containsWrite(stmts) {
		s.lastWindow = t
		s.hub.add(t, s)
		return t
	}

	// Per-session barrier: everything this session put in the window was
	// registered before the write, so it must execute first. Under a
	// quorum policy the barrier waits for the window to fill (the
	// deterministic close); a quorum-less hub closes it now.
	if lw := s.lastWindow; lw != nil {
		select {
		case <-lw.done:
		default:
			s.hub.waitForTicket(lw)
		}
	}
	out, demux, ss := applyStagesTraced(ctx, t.arrival, s.stages, stmts)
	// The write has not published yet (its ticket completes below), so the
	// recovery loop may retry it freely: injected failures fire before
	// execution, and a real execution error is permanent — it surfaces
	// exactly once, here.
	r := execRecover(s.conn, ctx, t.arrival, out, demux, stmts, s.retry)
	t.results, t.err, t.stmtErrs = r.results, r.err, r.stmtErrs
	t.completeAt = r.done
	t.bs = batchStats(len(out), ss, r.shards)
	s.box.addExec(len(out), ss, r.err)
	s.box.addRecovery(r)
	close(t.done)
	return t
}

// Wait blocks for the ticket's results — closing its window if this hub
// closes on demand — and pays the completion time the session has not
// already overlapped with compute.
func (s *Shared) Wait(t *Ticket) ([]*sqldb.ResultSet, BatchStats, error) {
	select {
	case <-t.done:
	default:
		s.hub.waitForTicket(t)
	}
	if t.err != nil {
		// Terminal failure still advances the session to the time the
		// failure was observed (no overlap credit): a frozen clock would
		// replay the identical time-keyed fault rolls on the next batch.
		netsim.AdvanceTo(s.clock, t.completeAt)
		return nil, t.bs, t.err
	}
	cost := maxDuration(0, t.completeAt-t.arrival)
	waited := netsim.AdvanceTo(s.clock, t.completeAt)
	if hidden := cost - waited; hidden > 0 {
		s.box.mu.Lock()
		s.box.stats.OverlapSaved += hidden
		s.box.mu.Unlock()
	}
	return t.results, t.bs, t.err
}

// Deferred reports that Submit returns before execution completes.
func (s *Shared) Deferred() bool { return true }

// Stats snapshots this session front end's counters; hub-wide window
// counters live on Hub.Stats.
func (s *Shared) Stats() Stats { return s.box.snapshot() }

// Close is a no-op: the hub outlives its front ends, and any batches this
// session left in the window execute when the window next closes.
func (s *Shared) Close() {}

var _ Dispatcher = (*Shared)(nil)
