package dispatch

import (
	"time"

	"repro/internal/driver"
	"repro/internal/merge"
	"repro/internal/netsim"
	"repro/internal/sqldb"
)

// DefaultWindowCap bounds how many statements a shared window accumulates
// before it closes on its own (a demand — any session waiting on one of
// its tickets — closes it earlier).
const DefaultWindowCap = 256

// Hub is the server-side accumulation window shared by the Shared
// dispatchers of concurrent sessions (ROADMAP "cross-request batching").
// Read-only batches submitted by any session collect in the current
// window; when the window closes — on demand, or at the statement cap —
// statements that are identical across sessions collapse to one execution,
// the pipeline stages (batch merging) rewrite the combined batch, and it
// executes in a single round trip on the hub's own connection. Results are
// then demultiplexed back to every contributing session.
//
// A Hub is safe for concurrent use; the window mutex serializes closes.
type Hub struct {
	conn   *driver.Conn
	stages []Stage
	cap    int

	// Window policy (SetWindow): close as soon as `expected` distinct
	// sessions have contributed, and let a demanding session hold the
	// window open for up to `grace` of real time waiting for them. grace
	// is a mechanism knob for letting truly concurrent submitters meet in
	// one window — it never enters the virtual-time arithmetic.
	expected int
	grace    time.Duration

	box statsBox

	// Window state, guarded by box.mu (closes hold it across execution so
	// a closing session acts for everyone racing it). owners tracks the
	// distinct sessions represented in the window: the quorum is sessions,
	// not batches, so one session submitting twice (e.g. reads split by a
	// write barrier) cannot close the window early for everyone else.
	window      []*windowEntry
	windowStmts int
	owners      map[*Shared]struct{}
}

// windowEntry is one session's batch waiting in the window, with the
// routing of its statements into the combined batch.
type windowEntry struct {
	t      *Ticket
	routes []int // per original statement: index into the combined batch
	intro  int   // statements this entry introduced (first occurrence)
}

// NewHub creates a shared accumulation window over a dedicated connection.
// cap <= 0 selects DefaultWindowCap. The stages run once per window over
// the combined cross-session batch.
func NewHub(conn *driver.Conn, cap int, stages ...Stage) *Hub {
	if cap <= 0 {
		cap = DefaultWindowCap
	}
	return &Hub{conn: conn, stages: stages, cap: cap}
}

// Stats snapshots hub-level counters (windows closed, statements coalesced
// across sessions, statements actually executed).
func (h *Hub) Stats() Stats { return h.box.snapshot() }

// SetWindow configures the accumulation policy: the window closes once
// `expected` distinct sessions have contributed a batch (typically the
// number of concurrent sessions), and a session demanding results holds it
// open for at most `grace` of real time first. The defaults (0, 0) close
// on first demand — correct for a single session, where there is nobody
// to wait for.
func (h *Hub) SetWindow(expected int, grace time.Duration) {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	h.expected = expected
	h.grace = grace
}

// add appends a read-only batch to the current window, closing the window
// if the session quorum or statement cap is reached.
func (h *Hub) add(t *Ticket, owner *Shared) {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	h.window = append(h.window, &windowEntry{t: t})
	h.windowStmts += len(t.stmts)
	if h.owners == nil {
		h.owners = make(map[*Shared]struct{})
	}
	h.owners[owner] = struct{}{}
	if h.windowStmts >= h.cap || (h.expected > 0 && len(h.owners) >= h.expected) {
		h.closeLocked()
	}
}

// waitForTicket blocks until t completes. With a grace period configured,
// the demanding session first waits up to that long so concurrent sessions
// can land their batches in the same window (the quorum trigger in add
// then closes it); only after the grace expires does it force the close
// itself.
func (h *Hub) waitForTicket(t *Ticket) {
	h.box.mu.Lock()
	grace := h.grace
	h.box.mu.Unlock()
	if grace > 0 {
		select {
		case <-t.done:
			return
		case <-time.After(grace):
		}
	}
	select {
	case <-t.done:
	default:
		h.CloseWindow()
		<-t.done
	}
}

// CloseWindow executes the current window, if any, filling every
// contributing ticket. Sessions call it through Wait (demand-driven close)
// and before write barriers; it is also exported for tests and draining.
func (h *Hub) CloseWindow() {
	h.box.mu.Lock()
	defer h.box.mu.Unlock()
	h.closeLocked()
}

func (h *Hub) closeLocked() {
	entries := h.window
	h.window = nil
	h.windowStmts = 0
	h.owners = nil
	if len(entries) == 0 {
		return
	}

	// Coalesce: identical statements across (and within) the window's
	// batches execute once. Entries are walked in submission order, so the
	// combined batch respects every session's own statement order.
	var combined []driver.Stmt
	byKey := make(map[string]int)
	arrival := entries[0].t.arrival
	totalIn := 0
	for _, e := range entries {
		if e.t.arrival > arrival {
			arrival = e.t.arrival
		}
		e.routes = make([]int, len(e.t.stmts))
		for i, st := range e.t.stmts {
			totalIn++
			k := st.Key()
			idx, dup := byKey[k]
			if !dup {
				idx = len(combined)
				byKey[k] = idx
				combined = append(combined, st)
				e.intro++
			}
			e.routes[i] = idx
		}
	}

	out, demux, ss := applyStages(h.stages, combined)
	results, done, err := h.conn.ExecBatchAt(arrival, out)
	if err == nil && demux != nil {
		results, err = demux(results)
	}

	// Window-level accounting: attempts (Windows, Coalesced, StmtsOut) and
	// errors count explicitly, so a failed window is visible rather than
	// silently under-reported, and the merge stage's window-level savings
	// land on the hub instead of vanishing.
	h.box.stats.Windows++
	h.box.stats.Coalesced += int64(totalIn - len(combined))
	h.box.stats.StmtsOut += int64(len(out))
	h.box.stats.MergeSaved += int64(ss.Saved)
	h.box.stats.MergeGroups += int64(ss.Groups)
	if err != nil {
		h.box.stats.Errors++
	}

	// Pro-rate the window's merge savings across the contributing entries
	// by the statements each introduced into the combined batch, so
	// per-session (and per-store) merge counters sum to the hub totals.
	intros := make([]int, len(entries))
	for i, e := range entries {
		intros[i] = e.intro
	}
	savedShares := prorate(ss.Saved, intros)
	groupShares := prorate(ss.Groups, intros)
	famShares := prorateFamilies(ss.SavedByFamily, savedShares)

	for k, e := range entries {
		t := e.t
		t.completeAt = done
		t.bs = BatchStats{
			Sent:          e.intro,
			SharedHits:    len(t.stmts) - e.intro,
			Saved:         savedShares[k],
			Groups:        groupShares[k],
			SavedByFamily: famShares[k],
		}
		if err != nil {
			t.err = err
		} else {
			rs := make([]*sqldb.ResultSet, len(e.routes))
			for i, idx := range e.routes {
				rs[i] = results[idx]
			}
			t.results = rs
		}
		close(t.done)
	}
}

// prorateFamilies splits per-family saved totals across entries INSIDE the
// Saved shares already allotted: each entry's family breakdown sums to
// exactly its Saved share (so a ticket's BatchStats is internally
// consistent), and each family's cross-entry sum equals its window total.
// Families fill entry capacity greedily in entry order; the fill pointer
// only advances, so both invariants hold whenever the family totals sum to
// the Saved total (which Plan.SavedByFamily guarantees).
func prorateFamilies(famTotals [merge.NumFamilies]int, savedShares []int) [][merge.NumFamilies]int {
	out := make([][merge.NumFamilies]int, len(savedShares))
	remaining := append([]int(nil), savedShares...)
	k := 0
	for f, n := range famTotals {
		for n > 0 && k < len(remaining) {
			if remaining[k] == 0 {
				k++
				continue
			}
			take := n
			if remaining[k] < take {
				take = remaining[k]
			}
			out[k][f] += take
			remaining[k] -= take
			n -= take
		}
	}
	return out
}

// prorate splits total across recipients proportionally to their weights,
// handing the rounding remainder out one unit at a time in recipient order
// so the shares always sum to total. Zero-weight recipients get nothing
// unless every weight is zero, in which case the first recipient absorbs
// the total (the degenerate case cannot arise for window entries, whose
// weights sum to the combined batch size).
func prorate(total int, weights []int) []int {
	out := make([]int, len(weights))
	if total == 0 || len(weights) == 0 {
		return out
	}
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	if wsum == 0 {
		out[0] = total
		return out
	}
	given := 0
	for i, w := range weights {
		out[i] = total * w / wsum
		given += out[i]
	}
	for i := 0; given < total; i = (i + 1) % len(weights) {
		if weights[i] > 0 {
			out[i]++
			given++
		}
	}
	return out
}

// Shared is the per-session front end of a Hub: read-only batches go to
// the shared window, write-containing batches act as per-session barriers
// — the window is forced closed first (so this session's earlier reads
// keep their order relative to the write), then the batch executes on the
// session's own connection, preserving its transaction state.
type Shared struct {
	hub    *Hub
	conn   *driver.Conn
	clock  netsim.Clock
	stages []Stage
	box    statsBox
}

// NewShared creates a session front end over hub. The stages apply to this
// session's write-containing batches (which bypass the window); window
// batches use the hub's stages.
func NewShared(hub *Hub, conn *driver.Conn, stages ...Stage) *Shared {
	return &Shared{hub: hub, conn: conn, clock: conn.Clock(), stages: stages}
}

// Hub returns the shared accumulation window this front end feeds.
func (s *Shared) Hub() *Hub { return s.hub }

// Submit routes the batch: reads accumulate in the shared window, writes
// barrier the window and execute on the session connection. Both return
// immediately in session virtual time (completion is paid at Wait).
func (s *Shared) Submit(stmts []driver.Stmt) *Ticket {
	s.box.addSubmit(len(stmts))
	t := &Ticket{stmts: stmts, arrival: s.clock.Now(), done: make(chan struct{})}
	if !containsWrite(stmts) {
		s.hub.add(t, s)
		return t
	}

	// Per-session barrier: everything this session put in the window was
	// registered before the write, so it must execute first.
	s.hub.CloseWindow()
	out, demux, ss := applyStages(s.stages, stmts)
	results, done, err := s.conn.ExecBatchAt(t.arrival, out)
	if err == nil && demux != nil {
		results, err = demux(results)
	}
	t.results, t.err = results, err
	t.completeAt = done
	t.bs = batchStats(len(out), ss)
	s.box.addExec(len(out), ss, err)
	close(t.done)
	return t
}

// Wait closes the ticket's window if it is still accumulating, blocks for
// the results, and pays the completion time the session has not already
// overlapped with compute.
func (s *Shared) Wait(t *Ticket) ([]*sqldb.ResultSet, BatchStats, error) {
	select {
	case <-t.done:
	default:
		// The ticket's window has not closed yet: give concurrent sessions
		// the configured grace to join it, then force the close. Closing a
		// window the ticket is no longer part of is harmless — those
		// batches were pending anyway.
		s.hub.waitForTicket(t)
	}
	if t.err != nil {
		return nil, t.bs, t.err
	}
	cost := maxDuration(0, t.completeAt-t.arrival)
	waited := netsim.AdvanceTo(s.clock, t.completeAt)
	if hidden := cost - waited; hidden > 0 {
		s.box.mu.Lock()
		s.box.stats.OverlapSaved += hidden
		s.box.mu.Unlock()
	}
	return t.results, t.bs, t.err
}

// Deferred reports that Submit returns before execution completes.
func (s *Shared) Deferred() bool { return true }

// Stats snapshots this session front end's counters; hub-wide window
// counters live on Hub.Stats.
func (s *Shared) Stats() Stats { return s.box.snapshot() }

// Close is a no-op: the hub outlives its front ends, and any batches this
// session left in the window execute when the window next closes.
func (s *Shared) Close() {}

var _ Dispatcher = (*Shared)(nil)
