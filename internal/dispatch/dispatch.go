// Package dispatch is the pluggable execution pipeline between the query
// store and the batch driver. The query store accumulates statements; a
// Dispatcher decides WHEN and WHERE an accumulated batch executes:
//
//   - Sync reproduces the paper's behaviour exactly: Submit rewrites the
//     batch through the pipeline stages, executes it in one blocking round
//     trip, and Wait just hands the results back.
//   - Async is the pipelined-flush strategy (ROADMAP "async/pipelined
//     flushes"): Submit enqueues the batch to a worker goroutine and
//     returns immediately, so app-server compute overlaps batch execution;
//     Wait blocks on the ticket and pays only the completion time the
//     session has not already spent computing.
//   - Shared is the cross-session batching strategy (ROADMAP
//     "cross-request batching", exercised by the Fig. 7-style throughput
//     experiment): read-only batches from concurrent sessions accumulate
//     in a server-side window, identical lookups collapse across sessions,
//     the combined batch executes once, and results demultiplex back per
//     session. Write-containing batches act as per-session barriers.
//
// Pipeline stages (today: the batch query-merge optimizer of
// internal/merge) rewrite a batch before execution and demultiplex results
// after, so every strategy benefits from the same optimizations.
package dispatch

import (
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/merge"
	"repro/internal/obs"
	"repro/internal/sqldb"
	"repro/internal/sqldb/sqlparse"
)

// Kind selects a dispatch strategy in configuration surfaces (query-store
// config, benchmark flags).
type Kind int

const (
	// KindSync executes batches synchronously at submit time (the paper's
	// strategy; the zero value, so existing configurations are unchanged).
	KindSync Kind = iota
	// KindAsync executes batches on a per-session worker goroutine.
	KindAsync
	// KindShared accumulates read batches across sessions in a shared
	// window.
	KindShared
)

// String names the strategy (benchmark report labels).
func (k Kind) String() string {
	switch k {
	case KindAsync:
		return "async"
	case KindShared:
		return "shared"
	default:
		return "sync"
	}
}

// ParseKind maps a flag value to a Kind.
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "sync", "":
		return KindSync, true
	case "async":
		return KindAsync, true
	case "shared":
		return KindShared, true
	}
	return KindSync, false
}

// BatchStats describes what execution of one submitted batch cost, for the
// query store's per-store accounting.
type BatchStats struct {
	// Sent is how many statements this batch contributed to the database
	// after pipeline rewriting (and, for shared windows, after
	// cross-session coalescing of the statements this batch introduced).
	Sent int
	// Saved is how many of this batch's statements the merge stage
	// eliminated. Under shared dispatch the window-level savings are
	// pro-rated across the window's contributing batches by the statements
	// each introduced, so per-store totals still sum to the hub totals.
	Saved int
	// Groups is how many merged statements the merge stage emitted for
	// this batch (pro-rated likewise under shared dispatch).
	Groups int
	// SavedByFamily breaks Saved down per merge family (FamilyID-indexed).
	SavedByFamily [merge.NumFamilies]int
	// SharedHits is how many of this batch's statements were answered by
	// an identical statement another session (or an earlier position in
	// the same window) had already contributed.
	SharedHits int
	// Shards is how many storage shards the executed batch occupied (its
	// scatter width): 1 on an unsharded server or for fully-routed batches,
	// the server's shard count for scans. Under shared dispatch every
	// contributing batch reports the window's width.
	Shards int
}

// Ticket is the handle for one submitted batch. Wait on it through the
// dispatcher that issued it; a ticket is waitable exactly once by the
// session that submitted it (the query store enforces this).
type Ticket struct {
	stmts   []driver.Stmt
	arrival time.Duration // session virtual time at Submit

	// ctx is the span context this batch's execution spans parent under
	// (the submitting flush). It is an immutable value captured at Submit,
	// so the async worker and the shared hub read it race-free.
	ctx obs.Ctx

	done chan struct{} // closed when results/err/completeAt are final

	// Owned by the executing goroutine until done is closed.
	results []*sqldb.ResultSet
	err     error
	// stmtErrs holds per-original-statement errors when the batch fell
	// back to degraded per-statement execution (StmtErrs); nil otherwise.
	stmtErrs   []error
	bs         BatchStats
	completeAt time.Duration // absolute virtual completion time
}

// Dispatcher is the pluggable execution strategy.
//
// Submit hands over one batch in statement order and returns a ticket
// without necessarily executing it. Wait blocks until the ticket's batch
// has executed, charges any not-yet-overlapped completion time to the
// session's clock, and returns the per-original-statement results (after
// stage demultiplexing). Deferred reports whether Submit returns before
// execution completes — the query store uses it to keep the synchronous
// strategy's error surfaces byte-compatible. Close releases strategy
// resources (the async worker); a dispatcher must not be used after Close.
type Dispatcher interface {
	Submit(stmts []driver.Stmt) *Ticket
	Wait(t *Ticket) ([]*sqldb.ResultSet, BatchStats, error)
	Deferred() bool
	Stats() Stats
	Close()
}

// CtxSubmitter is the optional tracing extension of Dispatcher: SubmitCtx
// is Submit with a span context under which the batch's pipeline and
// execution spans record. All three built-in strategies implement it; the
// query store type-asserts, so caller-built Dispatchers without it keep
// working untraced.
type CtxSubmitter interface {
	SubmitCtx(ctx obs.Ctx, stmts []driver.Stmt) *Ticket
}

// Stats counts dispatcher activity.
type Stats struct {
	Submitted int64 // batches submitted
	StmtsIn   int64 // statements submitted
	// StmtsOut is statements handed to the database after pipeline
	// rewriting — attempts, counted whether or not the batch then failed,
	// so the error path and the success path account identically; Errors
	// records the failures.
	StmtsOut int64
	// Errors counts batch executions that failed TERMINALLY: retried
	// attempts that eventually succeeded land in Retries instead, so under
	// injected faults the error accounting stays deterministic and a
	// recovered batch is not misreported as a failure.
	Errors int64
	// Retries counts re-attempted batch executions under a RetryPolicy
	// (each backed-off attempt after the first, across all batches).
	Retries int64
	// Degraded counts batches that fell back to per-statement execution
	// after exhausting batch-level recovery.
	Degraded int64
	// OverlapSaved is virtual time that batch execution spent overlapped
	// with app-server compute: the portion of completion time a session
	// did not have to wait for (async and shared only).
	OverlapSaved time.Duration
	// PeakQueue is the high-water mark of tickets waiting for the async
	// worker — how far a burst of pipelined flushes outran execution
	// without ever blocking Submit (async only).
	PeakQueue int64
	// Windows and Coalesced describe shared-window activity: windows
	// closed (attempts, like StmtsOut), and statements answered by another
	// in-window statement.
	Windows   int64
	Coalesced int64
	// MergeSaved and MergeGroups attribute the merge stage's activity at
	// this dispatcher's level: for a shared hub these are the window-level
	// savings (which per-session BatchStats pro-rate), for the per-session
	// strategies they mirror the per-batch stage totals.
	MergeSaved  int64
	MergeGroups int64
}

// Demux maps executed results back onto a batch's original statements.
type Demux func([]*sqldb.ResultSet) ([]*sqldb.ResultSet, error)

// StageStats is one stage's effect on one batch.
type StageStats struct {
	Saved         int                    // statements eliminated
	Groups        int                    // merged statements emitted
	SavedByFamily [merge.NumFamilies]int // Saved broken down per merge family
}

// Stage is one pipeline rewrite pass: it may coalesce, reorder-preserving,
// the statements of a batch, and must return a demux that reconstructs
// exactly the results the original statements would have produced.
type Stage interface {
	Apply(stmts []driver.Stmt) ([]driver.Stmt, Demux, StageStats)
}

// mergeStage adapts the batch query-merge optimizer to the pipeline.
type mergeStage struct {
	m *merge.Merger
}

// MergeStage wraps a merge.Merger as a pipeline stage. The merger keeps
// its own cumulative stats; per-batch deltas flow through StageStats.
func MergeStage(m *merge.Merger) Stage { return mergeStage{m: m} }

func (s mergeStage) Apply(stmts []driver.Stmt) ([]driver.Stmt, Demux, StageStats) {
	plan := s.m.Rewrite(stmts)
	return plan.Stmts, plan.Demux, StageStats{
		Saved:         plan.Saved(),
		Groups:        plan.Groups(),
		SavedByFamily: plan.SavedByFamily(),
	}
}

// applyStages chains the pipeline over a batch, composing demuxes in
// reverse so results flow back through each stage's reconstruction.
func applyStages(stages []Stage, stmts []driver.Stmt) ([]driver.Stmt, Demux, StageStats) {
	var demuxes []Demux
	var total StageStats
	out := stmts
	for _, st := range stages {
		var d Demux
		var ss StageStats
		out, d, ss = st.Apply(out)
		if d != nil {
			demuxes = append(demuxes, d)
		}
		total.Saved += ss.Saved
		total.Groups += ss.Groups
		for f, n := range ss.SavedByFamily {
			total.SavedByFamily[f] += n
		}
	}
	if len(demuxes) == 0 {
		return out, nil, total
	}
	demux := func(results []*sqldb.ResultSet) ([]*sqldb.ResultSet, error) {
		var err error
		for i := len(demuxes) - 1; i >= 0; i-- {
			results, err = demuxes[i](results)
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	return out, demux, total
}

// applyStagesTraced is applyStages plus a zero-width "merge" span at the
// batch's virtual submit time recording what the pipeline rewrite did
// (statements in/out, eliminated, merged groups). The rewrite itself takes
// no virtual time — it happens inside the driver round trip the paper's
// extended driver already pays for — so the span is an annotation, not a
// duration.
func applyStagesTraced(ctx obs.Ctx, at time.Duration, stages []Stage, stmts []driver.Stmt) ([]driver.Stmt, Demux, StageStats) {
	out, demux, ss := applyStages(stages, stmts)
	if len(stages) > 0 && ctx.Enabled() {
		ctx.Instant("merge", "rewrite", at,
			obs.Arg{K: "in", V: len(stmts)},
			obs.Arg{K: "out", V: len(out)},
			obs.Arg{K: "saved", V: ss.Saved},
			obs.Arg{K: "groups", V: ss.Groups})
	}
	return out, demux, ss
}

// containsWrite reports whether any statement in the batch mutates state
// or controls a transaction — the per-session barrier condition. The
// threaded AST (parse-once: populated by the query store at submit time)
// classifies exactly; statements without one fall back to the keyword
// scan, which agrees on every parseable statement.
func containsWrite(stmts []driver.Stmt) bool {
	for _, st := range stmts {
		if st.Parsed != nil {
			if sqlparse.IsWrite(st.Parsed) {
				return true
			}
			continue
		}
		if sqlparse.IsWriteSQL(st.SQL) {
			return true
		}
	}
	return false
}

// statsBox is the mutex-guarded counter block shared by the strategies.
type statsBox struct {
	mu    sync.Mutex
	stats Stats
}

func (b *statsBox) snapshot() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

func (b *statsBox) addSubmit(n int) {
	b.mu.Lock()
	b.stats.Submitted++
	b.stats.StmtsIn += int64(n)
	b.mu.Unlock()
}

// addExec records one attempted batch execution: statements handed to the
// database, the pipeline's merge effect, and whether execution failed.
// Attempts and errors are counted explicitly so the error path accounts
// exactly like the success path.
func (b *statsBox) addExec(sent int, ss StageStats, err error) {
	b.mu.Lock()
	b.stats.StmtsOut += int64(sent)
	b.stats.MergeSaved += int64(ss.Saved)
	b.stats.MergeGroups += int64(ss.Groups)
	if err != nil {
		b.stats.Errors++
	}
	b.mu.Unlock()
}

// batchStats fills the per-batch ticket stats from a stage total.
func batchStats(sent int, ss StageStats, shards int) BatchStats {
	return BatchStats{Sent: sent, Saved: ss.Saved, Groups: ss.Groups, SavedByFamily: ss.SavedByFamily, Shards: shards}
}
