package dispatch

import (
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sqldb"
)

// DefaultAsyncDepth is the initial capacity of the async dispatcher's
// ticket queue. The queue grows past it rather than blocking Submit — a
// fixed-depth channel here once meant that a session submitting more than
// 16 flushes before its first Wait silently serialized on the dispatcher.
const DefaultAsyncDepth = 16

// Async is the pipelined-flush strategy: Submit stamps the batch with the
// session's current virtual time and hands it to a single worker goroutine,
// so the flush returns immediately and the session keeps computing while
// the batch crosses the simulated network and executes. Wait blocks until
// the worker finishes and advances the session clock only to the batch's
// completion time — compute the session performed between Submit and Wait
// is overlapped, not added (the async half of the paper's Sec. 5 server
// driver, ROADMAP "async/pipelined flushes").
//
// The single FIFO worker preserves statement order across batches, so
// write barriers hold exactly as in the synchronous strategy. The queue
// between Submit and the worker is unbounded: Submit never blocks, however
// many flushes a session issues before its first Wait (Stats.PeakQueue
// records the high-water mark).
type Async struct {
	conn  *driver.Conn
	clock netsim.Clock

	stages []Stage
	retry  RetryPolicy
	box    statsBox

	// Ticket queue, guarded by mu; nonEmpty signals the worker. depth is
	// the configured initial capacity, reused when a drained queue's
	// backing array is recycled.
	mu       sync.Mutex
	nonEmpty *sync.Cond
	queue    []*Ticket
	depth    int
	closed   bool

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewAsync creates the asynchronous dispatcher with the default queue
// depth and starts its worker. Close must be called to stop the worker.
func NewAsync(conn *driver.Conn, stages ...Stage) *Async {
	return NewAsyncDepth(conn, 0, stages...)
}

// NewAsyncDepth creates the asynchronous dispatcher with an initial ticket
// queue capacity of depth (<= 0 selects DefaultAsyncDepth). Depth is a
// sizing hint only: the queue grows when a burst of flushes outruns the
// worker, so Submit never blocks and batches never serialize behind a full
// buffer.
func NewAsyncDepth(conn *driver.Conn, depth int, stages ...Stage) *Async {
	if depth <= 0 {
		depth = DefaultAsyncDepth
	}
	a := &Async{
		conn:   conn,
		clock:  conn.Clock(),
		stages: stages,
		queue:  make([]*Ticket, 0, depth),
		depth:  depth,
	}
	a.nonEmpty = sync.NewCond(&a.mu)
	a.wg.Add(1)
	go a.worker()
	return a
}

// next blocks until a ticket is queued or the dispatcher is closed and
// drained, popping in FIFO order.
func (a *Async) next() (*Ticket, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.queue) == 0 {
		if a.closed {
			return nil, false
		}
		a.nonEmpty.Wait()
	}
	t := a.queue[0]
	a.queue[0] = nil
	a.queue = a.queue[1:]
	if len(a.queue) == 0 {
		// Burst drained: recycle a fresh backing array so the slice window
		// never creeps through an ever-growing allocation.
		a.queue = make([]*Ticket, 0, a.depth)
	}
	return t, true
}

func (a *Async) worker() {
	defer a.wg.Done()
	for {
		t, ok := a.next()
		if !ok {
			return
		}
		out, demux, ss := applyStagesTraced(t.ctx, t.arrival, a.stages, t.stmts)
		r := execRecover(a.conn, t.ctx, t.arrival, out, demux, t.stmts, a.retry)
		t.results, t.err, t.stmtErrs = r.results, r.err, r.stmtErrs
		t.completeAt = r.done
		t.bs = batchStats(len(out), ss, r.shards)
		a.box.addExec(len(out), ss, r.err)
		a.box.addRecovery(r)
		close(t.done)
	}
}

// SetRetry installs the recovery policy (retry/degradation) for this
// dispatcher's batches. Call before submitting.
func (a *Async) SetRetry(p RetryPolicy) { a.retry = p }

// Submit enqueues the batch and returns immediately; it never blocks on
// queue capacity. Submitting after Close is a caller bug and panics (as
// the old closed-channel send did) rather than handing back a ticket no
// worker will ever complete.
func (a *Async) Submit(stmts []driver.Stmt) *Ticket {
	return a.SubmitCtx(obs.Ctx{}, stmts)
}

// SubmitCtx is Submit with a span context; the worker parents the batch's
// execution spans under it when it reaches the ticket.
func (a *Async) SubmitCtx(ctx obs.Ctx, stmts []driver.Stmt) *Ticket {
	a.box.addSubmit(len(stmts))
	t := &Ticket{stmts: stmts, arrival: a.clock.Now(), ctx: ctx, done: make(chan struct{})}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		panic("dispatch: Submit on closed Async dispatcher")
	}
	a.queue = append(a.queue, t)
	n := int64(len(a.queue))
	a.mu.Unlock()
	a.nonEmpty.Signal()
	a.box.mu.Lock()
	if n > a.box.stats.PeakQueue {
		a.box.stats.PeakQueue = n
	}
	a.box.mu.Unlock()
	return t
}

// Wait blocks until the ticket's batch has executed, then pays only the
// completion time the session has not already overlapped with compute.
func (a *Async) Wait(t *Ticket) ([]*sqldb.ResultSet, BatchStats, error) {
	<-t.done
	if t.err != nil {
		// Terminal failure still advances the session to the time the
		// failure was observed (no overlap credit): a frozen clock would
		// replay the identical time-keyed fault rolls on the next batch.
		netsim.AdvanceTo(a.clock, t.completeAt)
		return nil, t.bs, t.err
	}
	cost := t.completeAt - t.arrival
	waited := netsim.AdvanceTo(a.clock, t.completeAt)
	if hidden := cost - waited; hidden > 0 {
		a.box.mu.Lock()
		a.box.stats.OverlapSaved += hidden
		a.box.mu.Unlock()
	}
	return t.results, t.bs, t.err
}

// Deferred reports that Submit returns before execution completes.
func (a *Async) Deferred() bool { return true }

// Stats snapshots the dispatcher counters.
func (a *Async) Stats() Stats { return a.box.snapshot() }

// Close stops the worker after it drains in-flight batches. Tickets
// submitted before Close remain waitable.
func (a *Async) Close() {
	a.closeOnce.Do(func() {
		a.mu.Lock()
		a.closed = true
		a.mu.Unlock()
		a.nonEmpty.Signal()
		a.wg.Wait()
	})
}

var _ Dispatcher = (*Async)(nil)
var _ Dispatcher = (*Sync)(nil)

// maxDuration is a small helper shared by the deferred strategies.
func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
