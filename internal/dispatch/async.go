package dispatch

import (
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/sqldb"
)

// Async is the pipelined-flush strategy: Submit stamps the batch with the
// session's current virtual time and hands it to a single worker goroutine,
// so the flush returns immediately and the session keeps computing while
// the batch crosses the simulated network and executes. Wait blocks until
// the worker finishes and advances the session clock only to the batch's
// completion time — compute the session performed between Submit and Wait
// is overlapped, not added (the async half of the paper's Sec. 5 server
// driver, ROADMAP "async/pipelined flushes").
//
// The single FIFO worker preserves statement order across batches, so
// write barriers hold exactly as in the synchronous strategy.
type Async struct {
	conn  *driver.Conn
	clock netsim.Clock

	stages []Stage
	ch     chan *Ticket
	wg     sync.WaitGroup
	box    statsBox

	closeOnce sync.Once
}

// NewAsync creates the asynchronous dispatcher and starts its worker.
// Close must be called to stop the worker.
func NewAsync(conn *driver.Conn, stages ...Stage) *Async {
	a := &Async{
		conn:   conn,
		clock:  conn.Clock(),
		stages: stages,
		ch:     make(chan *Ticket, 16),
	}
	a.wg.Add(1)
	go a.worker()
	return a
}

func (a *Async) worker() {
	defer a.wg.Done()
	for t := range a.ch {
		out, demux, ss := applyStages(a.stages, t.stmts)
		results, done, err := a.conn.ExecBatchAt(t.arrival, out)
		if err == nil && demux != nil {
			results, err = demux(results)
		}
		t.results, t.err = results, err
		t.completeAt = done
		t.bs = batchStats(len(out), ss)
		a.box.addExec(len(out), ss, err)
		close(t.done)
	}
}

// Submit enqueues the batch and returns immediately.
func (a *Async) Submit(stmts []driver.Stmt) *Ticket {
	a.box.addSubmit(len(stmts))
	t := &Ticket{stmts: stmts, arrival: a.clock.Now(), done: make(chan struct{})}
	a.ch <- t
	return t
}

// Wait blocks until the ticket's batch has executed, then pays only the
// completion time the session has not already overlapped with compute.
func (a *Async) Wait(t *Ticket) ([]*sqldb.ResultSet, BatchStats, error) {
	<-t.done
	if t.err != nil {
		return nil, t.bs, t.err
	}
	cost := t.completeAt - t.arrival
	waited := netsim.AdvanceTo(a.clock, t.completeAt)
	if hidden := cost - waited; hidden > 0 {
		a.box.mu.Lock()
		a.box.stats.OverlapSaved += hidden
		a.box.mu.Unlock()
	}
	return t.results, t.bs, t.err
}

// Deferred reports that Submit returns before execution completes.
func (a *Async) Deferred() bool { return true }

// Stats snapshots the dispatcher counters.
func (a *Async) Stats() Stats { return a.box.snapshot() }

// Close stops the worker after it drains in-flight batches. Tickets
// submitted before Close remain waitable.
func (a *Async) Close() {
	a.closeOnce.Do(func() {
		close(a.ch)
		a.wg.Wait()
	})
}

var _ Dispatcher = (*Async)(nil)
var _ Dispatcher = (*Sync)(nil)

// maxDuration is a small helper shared by the deferred strategies.
func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
